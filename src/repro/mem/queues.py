"""Load/store unit queues and the CIAO datapath multiplexer.

These small structures model the plumbing Figure 7a of the paper touches:

* :class:`ResponseQueue` -- buffers fills coming back from L2 before they are
  written into the L1D or (under CIAO) the shared-memory cache.  CIAO's data
  migration path also uses it: when a redirected warp's block is still in the
  L1D, the block is evicted *into the response queue* and then pulled into
  shared memory, so the cold-miss / coherence penalty is hidden.
* :class:`WriteQueue` -- buffers write-through stores heading to L2.
* :class:`DatapathMux` -- the multiplexer CIAO adds so the write/response
  queues can be steered either to the L1D or to shared memory, controlled by
  the isolation flag of the requesting warp.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional


@dataclass(slots=True)
class QueueEntry:
    """One queued memory packet (slotted: allocated per store / fill)."""

    block: int
    wid: int
    ready_at: int
    destination: str = "l1d"  # "l1d" or "shared"
    payload: object | None = None


class _BoundedQueue:
    """FIFO with a capacity bound and time-gated pop."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[QueueEntry] = deque()
        self.pushes = 0
        self.full_stalls = 0

    def can_push(self) -> bool:
        """True when there is room for one more entry."""
        return len(self._entries) < self.capacity

    def push(self, entry: QueueEntry) -> bool:
        """Append ``entry``; returns False (and counts a stall) when full."""
        if not self.can_push():
            self.full_stalls += 1
            return False
        self._entries.append(entry)
        self.pushes += 1
        return True

    def pop_ready(self, now: int) -> Optional[QueueEntry]:
        """Pop the head entry if its ``ready_at`` time has arrived."""
        if self._entries and self._entries[0].ready_at <= now:
            return self._entries.popleft()
        return None

    def peek(self) -> Optional[QueueEntry]:
        """Return the head entry without removing it."""
        return self._entries[0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:  # pragma: no cover - trivial
        return bool(self._entries)


class ResponseQueue(_BoundedQueue):
    """Fill responses returning from the L2 / DRAM side."""

    def __init__(self, capacity: int = 64) -> None:
        super().__init__(capacity)


class WriteQueue(_BoundedQueue):
    """Write-through stores waiting to be sent to L2."""

    def __init__(self, capacity: int = 64) -> None:
        super().__init__(capacity)


class DatapathMux:
    """Steers response/write queue traffic to the L1D or the shared memory.

    The CIAO cache control logic drives the select input from the requesting
    warp's isolation flag (I bit) and the tag-check results (Section IV-B,
    "Datapath connection").  In the model the mux simply records routing
    decisions; the LDST unit asks it where a given fill should land.
    """

    L1D = "l1d"
    SHARED = "shared"

    def __init__(self) -> None:
        self.routed_to_l1d = 0
        self.routed_to_shared = 0

    def route(self, destination: str) -> str:
        """Record and return the routing decision for one packet."""
        if destination == self.SHARED:
            self.routed_to_shared += 1
            return self.SHARED
        self.routed_to_l1d += 1
        return self.L1D

    @property
    def total_routed(self) -> int:
        """Total packets steered through the mux."""
        return self.routed_to_l1d + self.routed_to_shared
