"""Memory-hierarchy substrate for the CIAO reproduction.

This subpackage re-implements, in Python, the on-chip and off-chip memory
structures the paper depends on (and which GPGPU-Sim provides for the
original work):

* :mod:`repro.mem.address` -- address decomposition into tag / set / offset.
* :mod:`repro.mem.hashing` -- XOR-based set-index hashing [Nugteren et al.].
* :mod:`repro.mem.tag_array` -- generic set-associative tag array with
  pluggable replacement.
* :mod:`repro.mem.cache` -- L1D / L2 data caches with write policies and
  per-warp ownership tracking.
* :mod:`repro.mem.victim_tag_array` -- the per-warp Victim Tag Array used by
  CCWS and by CIAO's interference detector.
* :mod:`repro.mem.mshr` -- miss status holding registers with request
  merging and the CIAO extension that records a translated shared-memory
  address for fills that must land in the shared-memory cache.
* :mod:`repro.mem.shared_memory` -- banked shared memory and the Shared
  Memory Management Table (SMMT).
* :mod:`repro.mem.shared_cache` -- the unused-shared-memory-as-cache
  structure (address translation unit, tag/data bank layout, direct-mapped
  lookup) introduced by CIAO.
* :mod:`repro.mem.queues` -- response / write queues and the L1<->shared
  memory datapath multiplexer.
* :mod:`repro.mem.dram` -- GDDR5-like latency/bandwidth model.
* :mod:`repro.mem.interconnect` -- SM <-> L2 interconnect and the L2 slice.
* :mod:`repro.mem.subsystem` -- glue object combining L2 + DRAM shared by
  all SMs.
"""

from repro.mem.address import AddressMapping, BLOCK_SIZE
from repro.mem.hashing import linear_set_index, xor_set_index, ipoly_set_index
from repro.mem.tag_array import TagArray, ReplacementPolicy
from repro.mem.cache import Cache, CacheConfig, AccessResult, AccessOutcome, WritePolicy
from repro.mem.victim_tag_array import VictimTagArray, VTAConfig, VTAHit
from repro.mem.mshr import MSHRFile, MSHREntry
from repro.mem.shared_memory import SharedMemory, SharedMemoryManagementTable, SMMTEntry
from repro.mem.shared_cache import SharedMemoryCache, AddressTranslationUnit, TranslatedAddress
from repro.mem.queues import ResponseQueue, WriteQueue, DatapathMux
from repro.mem.dram import DRAMModel, DRAMConfig
from repro.mem.interconnect import Interconnect, L2Slice
from repro.mem.subsystem import MemorySubsystem

__all__ = [
    "AddressMapping",
    "BLOCK_SIZE",
    "linear_set_index",
    "xor_set_index",
    "ipoly_set_index",
    "TagArray",
    "ReplacementPolicy",
    "Cache",
    "CacheConfig",
    "AccessResult",
    "AccessOutcome",
    "WritePolicy",
    "VictimTagArray",
    "VTAConfig",
    "VTAHit",
    "MSHRFile",
    "MSHREntry",
    "SharedMemory",
    "SharedMemoryManagementTable",
    "SMMTEntry",
    "SharedMemoryCache",
    "AddressTranslationUnit",
    "TranslatedAddress",
    "ResponseQueue",
    "WriteQueue",
    "DatapathMux",
    "DRAMModel",
    "DRAMConfig",
    "Interconnect",
    "L2Slice",
    "MemorySubsystem",
]
