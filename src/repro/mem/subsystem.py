"""Memory subsystem shared by all SMs: interconnect + L2 + DRAM.

One :class:`MemorySubsystem` instance is shared by every SM in a simulation.
It provides a single call, :meth:`read_block` / :meth:`write_block`, that
resolves when a 128-byte transaction's data is available back at the SM,
including interconnect traversal, L2 lookup, DRAM queueing and the response
path.  It also exposes the DRAM utilisation signal statPCAL consults to
decide whether bypassed warps may proceed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.cache import CacheConfig
from repro.mem.dram import DRAMConfig
from repro.mem.interconnect import Interconnect, InterconnectConfig, L2Slice


@dataclass
class MemorySubsystemConfig:
    """Configuration of the shared (off-SM) memory system."""

    l2: CacheConfig | None = None
    dram: DRAMConfig | None = None
    interconnect: InterconnectConfig | None = None

    @classmethod
    def gtx480(cls, *, dram_bandwidth_scale: float = 1.0) -> "MemorySubsystemConfig":
        """Baseline configuration; ``dram_bandwidth_scale`` supports Fig. 12b."""
        dram = DRAMConfig.gtx480()
        if dram_bandwidth_scale != 1.0:
            dram = dram.scaled_bandwidth(dram_bandwidth_scale)
        return cls(l2=CacheConfig.l2_gtx480(), dram=dram, interconnect=InterconnectConfig())


class MemorySubsystem:
    """Shared L2 + DRAM behind per-SM interconnect ports."""

    def __init__(self, config: MemorySubsystemConfig | None = None, num_sms: int = 1) -> None:
        self.config = config or MemorySubsystemConfig.gtx480()
        if num_sms <= 0:
            raise ValueError("need at least one SM")
        self.num_sms = num_sms
        self.l2 = L2Slice(self.config.l2, self.config.dram)
        self._ports = [Interconnect(self.config.interconnect) for _ in range(num_sms)]

    # ------------------------------------------------------------------
    def read_block(self, sm_id: int, block: int, wid: int, now: int) -> int:
        """Fetch one block for SM ``sm_id``; returns the fill-arrival cycle."""
        port = self._ports[sm_id]
        arrival_at_l2 = port.inject(now)
        data_ready_at_l2 = self.l2.access(
            block, wid, arrival_at_l2, is_write=False, requester=sm_id
        )
        return data_ready_at_l2 + port.return_latency()

    def write_block(self, sm_id: int, block: int, wid: int, now: int) -> int:
        """Post one write-through store; returns its L2 completion cycle."""
        port = self._ports[sm_id]
        arrival_at_l2 = port.inject(now)
        return self.l2.access(block, wid, arrival_at_l2, is_write=True, requester=sm_id)

    # ------------------------------------------------------------------
    def dram_utilization(self, elapsed_cycles: int) -> float:
        """DRAM bandwidth utilisation (the statPCAL bypass signal)."""
        return self.l2.dram.utilization(elapsed_cycles)

    def dram_backlog(self, now: int) -> float:
        """Cycles of queued DRAM work (congestion indicator)."""
        return self.l2.dram.pending_backlog(now)

    @property
    def l2_hit_rate(self) -> float:
        """L2 hit rate so far."""
        return self.l2.hit_rate

    @property
    def inter_sm_dram_conflicts(self) -> int:
        """DRAM requests that queued behind a different SM's burst."""
        return self.l2.dram.stats.inter_requester_conflicts

    @property
    def inter_sm_dram_conflicts_by_sm(self) -> dict[int, int]:
        """The same conflicts keyed by the suffering SM (sums to the total)."""
        return dict(self.l2.dram.stats.conflicts_by_requester)
