"""Set-associative data caches (L1D and L2).

The cache model is functional / timing-annotated: it tracks which blocks are
present, who owns them, hit/miss outcomes and evictions, but does not store
data bytes.  Timing (hit latency, fill latency) is applied by the load-store
unit and the memory subsystem that drive the cache.

Configuration follows Table I of the paper:

* L1D: 16 KB, 128 B lines, 4 ways, write no-allocate for global stores,
  write-back for local stores, LRU, 1-cycle latency, XOR set hashing.
* L2: 768 KB, 128 B lines, 8 ways, write-allocate, write-back, LRU.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.mem.address import BLOCK_SIZE, AddressMapping
from repro.mem.hashing import get_set_hash
from repro.mem.tag_array import Eviction, ReplacementPolicy, TagArray, TagLine


class WritePolicy(enum.Enum):
    """Write handling for store transactions."""

    WRITE_THROUGH_NO_ALLOCATE = "write-through-no-allocate"
    WRITE_BACK_WRITE_ALLOCATE = "write-back-write-allocate"


class AccessOutcome(enum.Enum):
    """Result category of a cache access."""

    HIT = "hit"
    HIT_RESERVED = "hit_reserved"  # block is being filled by an earlier miss
    MISS = "miss"
    MISS_NO_ALLOCATE = "miss_no_allocate"  # write miss under no-allocate policy
    RESERVATION_FAIL = "reservation_fail"  # no replaceable line (set all reserved)


@dataclass(slots=True)
class AccessResult:
    """Outcome of one :meth:`Cache.access` call (slotted: one per access)."""

    outcome: AccessOutcome
    block: int
    set_index: int
    eviction: Optional[Eviction] = None
    line: Optional[TagLine] = None
    writeback_block: Optional[int] = None  # dirty victim that must go to the next level

    @property
    def is_hit(self) -> bool:
        """True for plain hits (reserved hits still wait for the fill)."""
        return self.outcome is AccessOutcome.HIT

    @property
    def is_miss(self) -> bool:
        """True when a fill from the next level is required."""
        return self.outcome in (AccessOutcome.MISS, AccessOutcome.MISS_NO_ALLOCATE)


@dataclass
class CacheConfig:
    """Geometry and policy of one cache level."""

    name: str
    size_bytes: int
    line_size: int = BLOCK_SIZE
    associativity: int = 4
    write_policy: WritePolicy = WritePolicy.WRITE_THROUGH_NO_ALLOCATE
    replacement: ReplacementPolicy = ReplacementPolicy.LRU
    set_hash: str = "xor"
    hit_latency: int = 1

    @property
    def num_lines(self) -> int:
        """Total number of lines."""
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.num_lines // self.associativity

    def validate(self) -> None:
        """Raise ``ValueError`` for inconsistent geometries."""
        if self.size_bytes % self.line_size != 0:
            raise ValueError("cache size must be a multiple of the line size")
        if self.num_lines % self.associativity != 0:
            raise ValueError("number of lines must be a multiple of associativity")
        if self.num_sets <= 0:
            raise ValueError("cache must have at least one set")

    @classmethod
    def l1d_gtx480(cls, *, set_hash: str = "xor", size_kb: int = 16, associativity: int = 4) -> "CacheConfig":
        """L1D configuration from Table I (16 KB, 4-way, WT/no-allocate)."""
        return cls(
            name="L1D",
            size_bytes=size_kb * 1024,
            associativity=associativity,
            write_policy=WritePolicy.WRITE_THROUGH_NO_ALLOCATE,
            set_hash=set_hash,
            hit_latency=1,
        )

    @classmethod
    def l2_gtx480(cls, *, set_hash: str = "xor", size_kb: int = 768) -> "CacheConfig":
        """L2 configuration from Table I (768 KB, 8-way, WB/write-allocate)."""
        return cls(
            name="L2",
            size_bytes=size_kb * 1024,
            associativity=8,
            write_policy=WritePolicy.WRITE_BACK_WRITE_ALLOCATE,
            set_hash=set_hash,
            hit_latency=8,
        )


@dataclass
class CacheStats:
    """Aggregate and per-warp hit/miss counters."""

    hits: int = 0
    misses: int = 0
    reservation_fails: int = 0
    evictions: int = 0
    writebacks: int = 0
    per_warp_hits: dict[int, int] = field(default_factory=dict)
    per_warp_misses: dict[int, int] = field(default_factory=dict)

    def record(self, wid: int, result: AccessResult) -> None:
        """Update counters from one access result."""
        if result.outcome is AccessOutcome.RESERVATION_FAIL:
            self.reservation_fails += 1
            return
        if result.outcome in (AccessOutcome.HIT, AccessOutcome.HIT_RESERVED):
            self.hits += 1
            self.per_warp_hits[wid] = self.per_warp_hits.get(wid, 0) + 1
        else:
            self.misses += 1
            self.per_warp_misses[wid] = self.per_warp_misses.get(wid, 0) + 1
        if result.eviction is not None:
            self.evictions += 1
        if result.writeback_block is not None:
            self.writebacks += 1

    @property
    def accesses(self) -> int:
        """Total accesses that resolved to hit or miss."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate over resolved accesses (0.0 when idle)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses


class Cache:
    """A single cache level (used for both L1D and L2).

    The cache exposes :meth:`access` for demand accesses and :meth:`fill` for
    returning miss data.  On a read miss the line is *reserved* immediately
    (so later accesses to the same block observe ``HIT_RESERVED`` and can be
    merged in the MSHR), mirroring GPGPU-Sim's allocate-on-miss behaviour.
    """

    def __init__(self, config: CacheConfig, *, eviction_hook: Optional[Callable[[Eviction], None]] = None) -> None:
        config.validate()
        self.config = config
        self.mapping = AddressMapping(
            num_sets=config.num_sets,
            line_size=config.line_size,
            set_hash=get_set_hash(config.set_hash),
        )
        self.tags = TagArray(
            num_sets=config.num_sets,
            associativity=config.associativity,
            policy=config.replacement,
        )
        self.stats = CacheStats()
        self._eviction_hook = eviction_hook

    # ------------------------------------------------------------------
    def access(self, byte_address: int, wid: int, *, is_write: bool, now: int) -> AccessResult:
        """Perform a demand access for warp ``wid`` at time ``now``."""
        tag, set_index, _ = self.mapping.decompose(byte_address)
        line = self.tags.lookup(set_index, tag, now)
        result: AccessResult
        if line is not None:
            if is_write:
                if self.config.write_policy is WritePolicy.WRITE_BACK_WRITE_ALLOCATE:
                    line.dirty = True
                # Under write-through the store still updates the line but the
                # write is forwarded to the next level by the LDST unit.
            outcome = AccessOutcome.HIT_RESERVED if line.reserved else AccessOutcome.HIT
            result = AccessResult(outcome=outcome, block=tag, set_index=set_index, line=line)
        elif is_write and self.config.write_policy is WritePolicy.WRITE_THROUGH_NO_ALLOCATE:
            # Global store miss: no allocation, the store goes straight to the
            # next level (write no-allocate, Table I).
            result = AccessResult(
                outcome=AccessOutcome.MISS_NO_ALLOCATE, block=tag, set_index=set_index
            )
        else:
            victim = self.tags.find_victim(set_index)
            if victim is None:
                result = AccessResult(
                    outcome=AccessOutcome.RESERVATION_FAIL, block=tag, set_index=set_index
                )
            else:
                # Reuse the victim we already found (insert() would re-run
                # the victim search on this hot path).
                eviction = self.tags.fill_line(
                    victim,
                    set_index,
                    tag,
                    owner_wid=wid,
                    now=now,
                    dirty=is_write
                    and self.config.write_policy is WritePolicy.WRITE_BACK_WRITE_ALLOCATE,
                    reserve=True,
                )
                writeback = None
                if eviction is not None and eviction.dirty:
                    writeback = eviction.tag
                if eviction is not None and self._eviction_hook is not None:
                    self._eviction_hook(eviction)
                result = AccessResult(
                    outcome=AccessOutcome.MISS,
                    block=tag,
                    set_index=set_index,
                    eviction=eviction,
                    line=victim,
                    writeback_block=writeback,
                )
        self.stats.record(wid, result)
        return result

    def fill(self, block: int, now: int) -> None:
        """Complete an outstanding fill for ``block`` (clears the reservation)."""
        byte_address = self.mapping.block_to_byte(block)
        set_index = self.mapping.set_index(byte_address)
        line = self.tags.probe(set_index, block)
        if line is not None:
            line.reserved = False
            line.last_used_at = now

    def contains(self, byte_address: int) -> bool:
        """True when the block holding ``byte_address`` is present (valid, not reserved)."""
        tag, set_index, _ = self.mapping.decompose(byte_address)
        line = self.tags.probe(set_index, tag)
        return line is not None and not line.reserved

    def probe_owner(self, byte_address: int) -> Optional[int]:
        """Return the warp id that owns the block, or None when absent."""
        tag, set_index, _ = self.mapping.decompose(byte_address)
        line = self.tags.probe(set_index, tag)
        if line is None:
            return None
        return line.owner_wid

    def invalidate(self, byte_address: int) -> bool:
        """Invalidate the block holding ``byte_address`` (CIAO data migration)."""
        tag, set_index, _ = self.mapping.decompose(byte_address)
        return self.tags.invalidate(set_index, tag)

    def flush(self) -> None:
        """Invalidate every line and keep statistics."""
        self.tags.invalidate_all()

    # ------------------------------------------------------------------
    @property
    def hit_latency(self) -> int:
        """Hit latency in cycles."""
        return self.config.hit_latency

    def occupancy(self) -> float:
        """Fraction of lines currently valid."""
        return self.tags.occupancy() / self.tags.num_lines
