"""CIAO's unused-shared-memory-as-cache structure.

Section IV-B of the paper describes how the unused portion of shared memory
is operated as a *direct-mapped* cache for the global-memory requests of
warps that CIAO decided to isolate:

* The 32 shared-memory banks are split into two bank groups of 16 banks; a
  128-byte data block is striped across the 16 banks of one group (8 bytes
  per bank), so a block can be read in a single access.
* Tags are stored in the *other* bank group (a tag + WID needs 31 bits, two
  tags fit in one 64-bit bank word, 32 tags per group-row), so a tag and its
  data block never conflict on a bank and are fetched in parallel.
* A hardware address translation unit maps a global address to the
  byte-offset / bank / bank-group / row fields ("F", "B", "G", "R") plus the
  tag location, using data/tag offset registers so the layout adapts to
  however much shared memory is actually unused.

The model below reproduces this bookkeeping faithfully enough to (1) answer
hit/miss with the right capacity and mapping behaviour, (2) account for the
tag storage overhead, and (3) expose the translation arithmetic for tests,
while remaining a functional model (no data bytes are stored).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mem.address import BLOCK_SIZE
from repro.mem.shared_memory import SharedMemory


@dataclass(frozen=True)
class TranslatedAddress:
    """Output of the address translation unit for one global address.

    Attributes mirror Figure 7c: ``byte_offset`` (F), ``bank`` (B),
    ``bank_group`` (G) and ``row`` (R) locate the data block; ``tag_row``,
    ``tag_bank_group`` and ``tag_slot`` locate the 31-bit tag + WID pair.
    """

    line_index: int
    byte_offset: int
    bank: int
    bank_group: int
    row: int
    tag_row: int
    tag_bank_group: int
    tag_slot: int
    tag: int


class AddressTranslationUnit:
    """Translate global byte addresses into shared-memory cache locations.

    Parameters
    ----------
    num_lines:
        Number of 128-byte data blocks the shared-memory cache can hold.
    data_offset_rows / tag_offset_rows:
        The "data block offset" and "tag offset" registers of Figure 7c,
        expressed in group-rows; they re-base the layout so that the cache
        only occupies the *unused* region of shared memory.
    """

    BANKS_PER_GROUP = 16
    BANK_WORD_BYTES = 8
    GROUP_ROW_BYTES = BANKS_PER_GROUP * BANK_WORD_BYTES  # 128 bytes
    TAGS_PER_BANK_WORD = 2
    TAGS_PER_GROUP_ROW = BANKS_PER_GROUP * TAGS_PER_BANK_WORD  # 32 tags

    def __init__(self, num_lines: int, *, data_offset_rows: int = 0, tag_offset_rows: int = 0) -> None:
        if num_lines < 0:
            raise ValueError("num_lines must be non-negative")
        self.num_lines = num_lines
        self.data_offset_rows = data_offset_rows
        self.tag_offset_rows = tag_offset_rows

    def translate(self, byte_address: int) -> TranslatedAddress:
        """Map a global byte address onto the shared-memory cache layout."""
        if self.num_lines == 0:
            raise ValueError("shared-memory cache has zero capacity")
        block = byte_address // BLOCK_SIZE
        line_index = block % self.num_lines
        byte_offset = byte_address % BLOCK_SIZE
        # Data placement: line i lives in group (i % 2), group-row (i // 2).
        bank_group = line_index % 2
        row = self.data_offset_rows + line_index // 2
        bank = (byte_offset // self.BANK_WORD_BYTES) % self.BANKS_PER_GROUP
        # Tag placement: the tag sits in the *other* group; 32 tags per row.
        tag_bank_group = 1 - bank_group
        tag_row = self.tag_offset_rows + line_index // self.TAGS_PER_GROUP_ROW
        tag_slot = line_index % self.TAGS_PER_GROUP_ROW
        return TranslatedAddress(
            line_index=line_index,
            byte_offset=byte_offset,
            bank=bank,
            bank_group=bank_group,
            row=row,
            tag_row=tag_row,
            tag_bank_group=tag_bank_group,
            tag_slot=tag_slot,
            tag=block,
        )


@dataclass
class SharedCacheLine:
    """One direct-mapped line of the shared-memory cache."""

    tag: Optional[int] = None
    owner_wid: int = -1
    reserved: bool = False
    last_used_at: int = -1


@dataclass
class SharedCacheStats:
    """Hit/miss statistics for the shared-memory cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    per_warp_hits: dict[int, int] = field(default_factory=dict)
    per_warp_misses: dict[int, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        """Resolved accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit rate over resolved accesses."""
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class SharedCacheAccess:
    """Outcome of one shared-memory-cache access."""

    hit: bool
    line_index: int
    block: int
    evicted_block: Optional[int] = None
    evicted_owner: int = -1
    reserved_pending: bool = False


class SharedMemoryCache:
    """Direct-mapped cache carved out of unused shared memory.

    Parameters
    ----------
    shared_memory:
        The SM's :class:`~repro.mem.shared_memory.SharedMemory`; the cache
        reserves its space through the SMMT (owner ``"ciao"``) so that the
        reservation is visible to later CTA launches, exactly as the paper's
        hardware does.
    reserve_bytes:
        How much unused shared memory to claim.  Defaults to everything
        currently unused.
    """

    #: Storage cost of a tag + WID pair (25-bit tag + 6-bit WID, Section IV-B).
    TAG_BITS = 31

    def __init__(self, shared_memory: SharedMemory, reserve_bytes: Optional[int] = None) -> None:
        self.shared_memory = shared_memory
        available = shared_memory.smmt.unused_bytes()
        if reserve_bytes is None:
            reserve_bytes = available
        if reserve_bytes > available:
            raise MemoryError(
                f"cannot reserve {reserve_bytes} bytes of shared memory; only {available} unused"
            )
        self.reserved_bytes = reserve_bytes
        if reserve_bytes > 0:
            self._smmt_entry = shared_memory.smmt.allocate("ciao", reserve_bytes)
        else:
            self._smmt_entry = None
        self.num_lines = self._usable_lines(reserve_bytes)
        data_offset_rows = (self._smmt_entry.base // AddressTranslationUnit.GROUP_ROW_BYTES) if self._smmt_entry else 0
        self.atu = AddressTranslationUnit(self.num_lines, data_offset_rows=data_offset_rows)
        self._lines = [SharedCacheLine() for _ in range(self.num_lines)]
        self.stats = SharedCacheStats()
        self.hit_latency = 1

    @staticmethod
    def _usable_lines(reserve_bytes: int) -> int:
        """Number of 128-byte data blocks after accounting for tag storage.

        Every 32 data blocks need one additional 128-byte group-row of tags
        (32 tags x 31 bits < 128 bytes), i.e. a 33:32 overhead.
        """
        if reserve_bytes < BLOCK_SIZE * 2:
            return 0
        # Solve lines * 128 + ceil(lines/32) * 128 <= reserve_bytes.
        lines = reserve_bytes // BLOCK_SIZE
        while lines > 0:
            tag_rows = (lines + 31) // 32
            if lines * BLOCK_SIZE + tag_rows * BLOCK_SIZE <= reserve_bytes:
                break
            lines -= 1
        return lines

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Data capacity in bytes (excludes tag rows)."""
        return self.num_lines * BLOCK_SIZE

    def release(self) -> None:
        """Return the reserved space to the SMMT (end of kernel / disable)."""
        if self._smmt_entry is not None:
            self.shared_memory.smmt.free("ciao")
            self._smmt_entry = None

    # ------------------------------------------------------------------
    def access(self, byte_address: int, wid: int, *, is_write: bool, now: int) -> SharedCacheAccess:
        """Access the shared-memory cache for warp ``wid``.

        Misses reserve the line immediately (fill allocated by the MSHR path)
        and report the evicted block, which -- because the shared cache only
        ever holds clean global data under the paper's write-through policy --
        never needs a writeback.
        """
        if self.num_lines == 0:
            # Degenerate configuration (no unused shared memory): everything
            # is a miss and nothing is retained.
            self.stats.misses += 1
            self.stats.per_warp_misses[wid] = self.stats.per_warp_misses.get(wid, 0) + 1
            return SharedCacheAccess(hit=False, line_index=-1, block=byte_address // BLOCK_SIZE)
        loc = self.atu.translate(byte_address)
        line = self._lines[loc.line_index]
        self._touch_rows(loc)
        if line.tag == loc.tag:
            line.last_used_at = now
            self.stats.hits += 1
            self.stats.per_warp_hits[wid] = self.stats.per_warp_hits.get(wid, 0) + 1
            return SharedCacheAccess(
                hit=True,
                line_index=loc.line_index,
                block=loc.tag,
                reserved_pending=line.reserved,
            )
        evicted_block = line.tag
        evicted_owner = line.owner_wid
        if evicted_block is not None:
            self.stats.evictions += 1
        line.tag = loc.tag
        line.owner_wid = wid
        line.reserved = True
        line.last_used_at = now
        self.stats.misses += 1
        self.stats.per_warp_misses[wid] = self.stats.per_warp_misses.get(wid, 0) + 1
        return SharedCacheAccess(
            hit=False,
            line_index=loc.line_index,
            block=loc.tag,
            evicted_block=evicted_block,
            evicted_owner=evicted_owner,
        )

    def fill(self, block: int, now: int) -> None:
        """Complete a pending fill for ``block`` (clears the reservation)."""
        if self.num_lines == 0:
            return
        line_index = block % self.num_lines
        line = self._lines[line_index]
        if line.tag == block:
            line.reserved = False
            line.last_used_at = now

    def contains(self, byte_address: int) -> bool:
        """True when the block is present and not awaiting a fill."""
        if self.num_lines == 0:
            return False
        loc = self.atu.translate(byte_address)
        line = self._lines[loc.line_index]
        return line.tag == loc.tag and not line.reserved

    def invalidate_all(self) -> None:
        """Drop every block (redirection disabled / kernel end)."""
        for line in self._lines:
            line.tag = None
            line.owner_wid = -1
            line.reserved = False

    def _touch_rows(self, loc: TranslatedAddress) -> None:
        """Mark the data and tag rows as used for the utilisation metric."""
        base = self._smmt_entry.base if self._smmt_entry else 0
        data_byte = base + loc.line_index * BLOCK_SIZE
        tag_byte = base + self.num_lines * BLOCK_SIZE + loc.tag_row * AddressTranslationUnit.GROUP_ROW_BYTES
        stats = self.shared_memory.stats
        stats.rows_touched.add(self.shared_memory.row_of(min(data_byte, self.shared_memory.capacity_bytes - 1)))
        stats.rows_touched.add(self.shared_memory.row_of(min(tag_byte, self.shared_memory.capacity_bytes - 1)))

    def occupancy(self) -> float:
        """Fraction of lines holding a block."""
        if self.num_lines == 0:
            return 0.0
        return sum(1 for line in self._lines if line.tag is not None) / self.num_lines
