"""Generic set-associative tag array.

Both the L1D and L2 caches (:mod:`repro.mem.cache`) and the victim tag array
(:mod:`repro.mem.victim_tag_array`) are built on top of this structure.  The
tag array is purely a *bookkeeping* structure -- the simulator is functional,
no data bytes are stored -- but it faithfully models:

* set-associative lookup with a configurable replacement policy (LRU / FIFO),
* per-line metadata: the warp that brought the line in (``owner_wid``), a
  dirty bit, and the insertion / last-touch timestamps,
* eviction reporting, which is the raw material for the victim tag array and
  the cache-interference statistics that CIAO consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional


class ReplacementPolicy(enum.Enum):
    """Replacement policy of a :class:`TagArray`."""

    LRU = "lru"
    FIFO = "fifo"


@dataclass(slots=True)
class TagLine:
    """One line of a tag array.

    Attributes
    ----------
    tag:
        Block number currently cached (``None`` when invalid).
    owner_wid:
        Warp id of the warp whose miss filled this line.  The paper stores a
        WID in every cache tag so that, on eviction, the victim tag array can
        be indexed by the owner (Section II-C).
    dirty:
        Set by write-back stores.
    inserted_at / last_used_at:
        Timestamps used by FIFO / LRU replacement respectively.
    reserved:
        True while the line is allocated for an outstanding fill (miss issued
        but data not yet returned); a reserved line cannot be replaced.
    """

    tag: Optional[int] = None
    owner_wid: int = -1
    dirty: bool = False
    inserted_at: int = -1
    last_used_at: int = -1
    reserved: bool = False

    @property
    def valid(self) -> bool:
        """True when the line holds (or is reserved for) a block."""
        return self.tag is not None


@dataclass(slots=True)
class Eviction:
    """Description of an evicted line, consumed by the VTA and statistics."""

    tag: int
    set_index: int
    owner_wid: int
    dirty: bool
    evictor_wid: int


@dataclass
class TagArray:
    """A set-associative array of :class:`TagLine`.

    Parameters
    ----------
    num_sets / associativity:
        Geometry.  ``num_sets * associativity`` lines in total.
    policy:
        Replacement policy (LRU by default, matching Table I).
    """

    num_sets: int
    associativity: int
    policy: ReplacementPolicy = ReplacementPolicy.LRU
    _sets: list[list[TagLine]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_sets <= 0 or self.associativity <= 0:
            raise ValueError("tag array geometry must be positive")
        self._sets = [
            [TagLine() for _ in range(self.associativity)] for _ in range(self.num_sets)
        ]

    # -- lookup ------------------------------------------------------------
    def probe(self, set_index: int, tag: int) -> Optional[TagLine]:
        """Return the line holding ``tag`` in ``set_index`` without touching LRU."""
        # ``tag`` is an int and invalid lines hold None, so the equality
        # check alone implies validity (hot path: one compare per way).
        for line in self._sets[set_index]:
            if line.tag == tag:
                return line
        return None

    def lookup(self, set_index: int, tag: int, now: int) -> Optional[TagLine]:
        """Probe and, on hit, update the LRU timestamp."""
        line = self.probe(set_index, tag)
        if line is not None:
            line.last_used_at = now
        return line

    # -- insertion / replacement -------------------------------------------
    def find_victim(self, set_index: int) -> Optional[TagLine]:
        """Choose the line that would be replaced next in ``set_index``.

        Invalid lines are preferred.  Reserved lines (pending fills) are never
        chosen; when every line is reserved ``None`` is returned and the
        caller must stall the access (this models the structural hazard of a
        set full of outstanding misses).
        """
        # Single pass, no candidate-list allocation: the first invalid
        # non-reserved line wins outright; otherwise the first line with the
        # minimal timestamp (strict < keeps min()'s first-minimum tie-break).
        use_lru = self.policy is ReplacementPolicy.LRU
        best: Optional[TagLine] = None
        best_key = 0
        for line in self._sets[set_index]:
            if line.reserved:
                continue
            if line.tag is None:
                return line
            key = line.last_used_at if use_lru else line.inserted_at
            if best is None or key < best_key:
                best = line
                best_key = key
        return best

    def insert(
        self,
        set_index: int,
        tag: int,
        owner_wid: int,
        now: int,
        *,
        dirty: bool = False,
        evictor_wid: Optional[int] = None,
        reserve: bool = False,
    ) -> tuple[TagLine, Optional[Eviction]]:
        """Insert ``tag`` into ``set_index``, evicting a victim if needed.

        Returns the line now holding ``tag`` and an :class:`Eviction` record
        when a valid line was displaced.  ``evictor_wid`` defaults to
        ``owner_wid`` -- the warp whose access caused the insertion is the
        warp responsible for the eviction.
        """
        victim = self.find_victim(set_index)
        if victim is None:
            raise RuntimeError(
                f"set {set_index} has no replaceable line (all reserved)"
            )
        eviction = self.fill_line(
            victim,
            set_index,
            tag,
            owner_wid,
            now,
            dirty=dirty,
            evictor_wid=evictor_wid,
            reserve=reserve,
        )
        return victim, eviction

    def fill_line(
        self,
        line: TagLine,
        set_index: int,
        tag: int,
        owner_wid: int,
        now: int,
        *,
        dirty: bool = False,
        evictor_wid: Optional[int] = None,
        reserve: bool = False,
    ) -> Optional[Eviction]:
        """Install ``tag`` into an already-chosen victim ``line``.

        The single place line-replacement state is written: :meth:`insert`
        delegates here, and hot paths that already ran :meth:`find_victim`
        (e.g. the L1D demand-miss path) call it directly instead of paying
        a second victim search.  Returns the :class:`Eviction` record when
        a valid line was displaced.
        """
        if evictor_wid is None:
            evictor_wid = owner_wid
        eviction: Optional[Eviction] = None
        if line.tag is not None:
            eviction = Eviction(
                tag=line.tag,
                set_index=set_index,
                owner_wid=line.owner_wid,
                dirty=line.dirty,
                evictor_wid=evictor_wid,
            )
        line.tag = tag
        line.owner_wid = owner_wid
        line.dirty = dirty
        line.inserted_at = now
        line.last_used_at = now
        line.reserved = reserve
        return eviction

    def invalidate(self, set_index: int, tag: int) -> bool:
        """Invalidate ``tag`` in ``set_index``; returns True when found."""
        line = self.probe(set_index, tag)
        if line is None:
            return False
        line.tag = None
        line.owner_wid = -1
        line.dirty = False
        line.reserved = False
        return True

    def invalidate_all(self) -> None:
        """Invalidate every line (used between kernel launches)."""
        for set_lines in self._sets:
            for line in set_lines:
                line.tag = None
                line.owner_wid = -1
                line.dirty = False
                line.reserved = False
                line.inserted_at = -1
                line.last_used_at = -1

    # -- introspection -------------------------------------------------------
    def lines(self) -> Iterator[tuple[int, TagLine]]:
        """Yield ``(set_index, line)`` for every line in the array."""
        for set_index, set_lines in enumerate(self._sets):
            for line in set_lines:
                yield set_index, line

    def set_lines(self, set_index: int) -> list[TagLine]:
        """Return the lines of one set (mutable view, used by tests)."""
        return self._sets[set_index]

    def occupancy(self) -> int:
        """Number of valid lines."""
        return sum(1 for _, line in self.lines() if line.valid)

    @property
    def num_lines(self) -> int:
        """Total number of lines in the array."""
        return self.num_sets * self.associativity
