"""SM <-> L2 interconnect and the L2 slice model.

The interconnect adds a fixed traversal latency each way plus a simple
injection-bandwidth limit per SM.  The L2 slice wraps the shared L2 cache and
the DRAM model and answers the only question the SM-side code needs: *when
does this request's data come back?*

The model is intentionally latency/bandwidth-accurate rather than
flit-accurate; the paper's mechanisms live entirely on the SM side and only
need a realistic (and congestible) downstream latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mem.cache import Cache, CacheConfig, WritePolicy
from repro.mem.dram import DRAMConfig, DRAMModel


@dataclass
class InterconnectConfig:
    """Latency / bandwidth of the SM-to-L2 interconnect."""

    #: One-way traversal latency in core cycles.  Fermi-class L1-miss-to-L2
    #: round trips are measured at well over 200 cycles; 100 cycles each way
    #: plus the L2 access reproduces that.
    latency: int = 100
    bytes_per_cycle: float = 32.0  # injection bandwidth per SM


class Interconnect:
    """Per-SM injection port with a fixed traversal latency."""

    def __init__(self, config: InterconnectConfig | None = None) -> None:
        self.config = config or InterconnectConfig()
        self._port_free_at = 0.0
        self.packets = 0

    def inject(self, now: int, size_bytes: int = 128) -> int:
        """Inject one packet at ``now``; returns its arrival time at L2."""
        serialization = size_bytes / self.config.bytes_per_cycle
        start = max(float(now), self._port_free_at)
        self._port_free_at = start + serialization
        self.packets += 1
        return int(start + serialization + self.config.latency)

    def return_latency(self) -> int:
        """Latency of the response path back to the SM."""
        return self.config.latency


class L2Slice:
    """The shared L2 cache backed by DRAM.

    ``access`` returns the absolute completion cycle of a read, or the
    posting cycle of a write, as seen at the L2 (the caller adds the return
    interconnect latency).
    """

    def __init__(
        self,
        cache_config: CacheConfig | None = None,
        dram_config: DRAMConfig | None = None,
    ) -> None:
        self.cache = Cache(cache_config or CacheConfig.l2_gtx480())
        self.dram = DRAMModel(dram_config or DRAMConfig.gtx480())
        self._port_free_at = 0.0
        #: L2 can accept one 128-byte access per ``port_cycles`` cycles.
        self.port_cycles = 2.0

    def access(
        self, block: int, wid: int, now: int, *, is_write: bool = False, requester: int = -1
    ) -> int:
        """Access the L2 for one 128-byte block; returns data-ready cycle.

        ``requester`` is the originating SM id (-1 when unknown); it is
        forwarded to the DRAM model's inter-requester contention accounting.
        """
        start = max(float(now), self._port_free_at)
        self._port_free_at = start + self.port_cycles
        byte_address = self.cache.mapping.block_to_byte(block)
        result = self.cache.access(byte_address, wid, is_write=is_write, now=int(start))
        ready = int(start) + self.cache.hit_latency
        if result.is_miss:
            ready = self.dram.service(block, ready, is_write=is_write, requester=requester)
            self.cache.fill(block, ready)
        if result.writeback_block is not None:
            # Dirty L2 victim: consumes DRAM bandwidth but is off the critical path.
            self.dram.service(result.writeback_block, int(start), is_write=True, requester=requester)
        return ready

    @property
    def hit_rate(self) -> float:
        """L2 hit rate so far."""
        return self.cache.stats.hit_rate
