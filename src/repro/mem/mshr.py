"""Miss Status Holding Registers (MSHRs).

The MSHR file tracks outstanding misses from an SM to the L2/DRAM.  Multiple
warps missing on the same 128-byte block are *merged* into one entry so only
one fill request travels down the hierarchy, which is essential to model the
bandwidth filtering a real L1D provides.

CIAO extends each entry with a translated shared-memory address field
(Section IV-B, "Datapath connection"): when the fill belongs to a warp whose
requests were redirected to the shared-memory cache, the response is steered
into shared memory instead of the L1D, using the address computed by the
address translation unit at miss time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(slots=True)
class MSHRTarget:
    """One merged requester waiting on an outstanding fill.

    Slotted: one target is allocated per global-memory transaction, which
    makes this one of the hottest allocations of the whole simulator.
    """

    wid: int
    request_id: int
    is_write: bool = False


@dataclass(slots=True)
class MSHREntry:
    """One outstanding miss to a 128-byte block (slotted, hot-path object)."""

    block: int
    issued_at: int
    destination: str = "l1d"  # "l1d" or "shared" (CIAO redirection)
    shared_slot: Optional[int] = None  # translated shared-memory row (CIAO)
    targets: list[MSHRTarget] = field(default_factory=list)

    def add_target(self, target: MSHRTarget) -> None:
        """Merge another requester onto this entry."""
        self.targets.append(target)

    @property
    def num_targets(self) -> int:
        """Number of merged requesters."""
        return len(self.targets)


@dataclass
class MSHRStats:
    """Counters for MSHR behaviour."""

    allocations: int = 0
    merges: int = 0
    full_stalls: int = 0
    fills: int = 0
    peak_occupancy: int = 0


class MSHRFile:
    """Fixed-capacity MSHR file with per-block merging.

    Parameters
    ----------
    num_entries:
        Number of distinct outstanding blocks (GPGPU-Sim's Fermi default is
        32 per SM; configurable).
    max_merged:
        Maximum requesters merged per entry before further accesses stall.
    """

    def __init__(self, num_entries: int = 32, max_merged: int = 8) -> None:
        if num_entries <= 0 or max_merged <= 0:
            raise ValueError("MSHR geometry must be positive")
        self.num_entries = num_entries
        self.max_merged = max_merged
        self._entries: dict[int, MSHREntry] = {}
        self.stats = MSHRStats()

    # ------------------------------------------------------------------
    def lookup(self, block: int) -> Optional[MSHREntry]:
        """Return the outstanding entry for ``block`` if any."""
        return self._entries.get(block)

    def can_allocate(self, block: int) -> bool:
        """True when a new request for ``block`` can be accepted right now."""
        entry = self._entries.get(block)
        if entry is not None:
            return entry.num_targets < self.max_merged
        return len(self._entries) < self.num_entries

    def allocate(
        self,
        block: int,
        target: MSHRTarget,
        now: int,
        *,
        destination: str = "l1d",
        shared_slot: Optional[int] = None,
    ) -> tuple[Optional[MSHREntry], bool]:
        """Allocate or merge a request for ``block``.

        Returns ``(entry, is_new)``.  ``entry`` is ``None`` when the file (or
        the merge list) is full, in which case the caller must replay the
        access later; the stall is counted.
        """
        entry = self._entries.get(block)
        if entry is not None:
            if entry.num_targets >= self.max_merged:
                self.stats.full_stalls += 1
                return None, False
            entry.add_target(target)
            self.stats.merges += 1
            return entry, False
        if len(self._entries) >= self.num_entries:
            self.stats.full_stalls += 1
            return None, False
        entry = MSHREntry(
            block=block,
            issued_at=now,
            destination=destination,
            shared_slot=shared_slot,
            targets=[target],
        )
        self._entries[block] = entry
        self.stats.allocations += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._entries))
        return entry, True

    def fill(self, block: int) -> Optional[MSHREntry]:
        """Complete the outstanding miss for ``block`` and release the entry."""
        entry = self._entries.pop(block, None)
        if entry is not None:
            self.stats.fills += 1
        return entry

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of outstanding blocks."""
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        """True when no miss is outstanding."""
        return not self._entries

    def outstanding_blocks(self) -> list[int]:
        """Blocks currently being fetched (ordered by allocation)."""
        return list(self._entries.keys())

    def outstanding_for_warp(self, wid: int) -> int:
        """Number of outstanding entries that have ``wid`` among their targets."""
        return sum(
            1
            for entry in self._entries.values()
            if any(t.wid == wid for t in entry.targets)
        )
