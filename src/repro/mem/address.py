"""Global-memory address decomposition.

The simulator uses byte addresses throughout.  The memory hierarchy operates
on 128-byte blocks (the L1D / L2 line size of the GTX 480 configuration in
Table I of the paper), so most structures only ever see *block addresses*
(``byte_address // 128``).

:class:`AddressMapping` captures how a cache of a given geometry splits a
byte address into ``(tag, set_index, byte_offset)``, optionally applying an
XOR-based set-index hash (see :mod:`repro.mem.hashing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: Cache line / memory transaction size in bytes (Table I: 128 B lines).
BLOCK_SIZE: int = 128

#: log2 of :data:`BLOCK_SIZE`.
BLOCK_SHIFT: int = 7


def block_address(byte_address: int) -> int:
    """Return the 128-byte block number containing ``byte_address``."""
    return byte_address >> BLOCK_SHIFT


def block_base(byte_address: int) -> int:
    """Return the byte address of the first byte of the containing block."""
    return (byte_address >> BLOCK_SHIFT) << BLOCK_SHIFT


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ilog2(value: int) -> int:
    """Integer log2 of a power of two.

    Raises :class:`ValueError` when ``value`` is not a power of two, because
    every cache geometry in this simulator is required to be power-of-two
    sized (as on the real hardware).
    """
    if not is_power_of_two(value):
        raise ValueError(f"{value} is not a power of two")
    return value.bit_length() - 1


@dataclass(frozen=True)
class AddressMapping:
    """Split byte addresses into (tag, set, offset) for a cache geometry.

    Parameters
    ----------
    num_sets:
        Number of cache sets; must be a power of two.
    line_size:
        Line size in bytes; must be a power of two (128 for this work).
    set_hash:
        Optional callable ``(block_addr, num_sets) -> set_index``.  When
        omitted the conventional modulo mapping is used.  The paper's
        baseline applies an XOR-based hash to both L1D and L2
        (Section V-A, citing Nugteren et al. [26]).
    """

    num_sets: int
    line_size: int = BLOCK_SIZE
    set_hash: Callable[[int, int], int] | None = None
    _offset_bits: int = field(init=False, repr=False, default=0)
    _set_bits: int = field(init=False, repr=False, default=0)
    _offset_mask: int = field(init=False, repr=False, default=0)
    _index_fn: Callable[[int], int] = field(init=False, repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_offset_bits", ilog2(self.line_size))
        object.__setattr__(self, "_offset_mask", self.line_size - 1)
        # The number of sets does not have to be a power of two: the GTX 480
        # L2 (768 KB, 8-way, 128 B lines) has 768 sets.  Non-power-of-two
        # geometries fall back to modulo indexing.
        if is_power_of_two(self.num_sets):
            object.__setattr__(self, "_set_bits", ilog2(self.num_sets))
        else:
            object.__setattr__(self, "_set_bits", self.num_sets.bit_length())
        # One-argument block -> set closure with the per-call constants
        # hoisted (this runs on every cache probe).
        if self.set_hash is not None:
            from repro.mem.hashing import specialize_set_hash

            index_fn = specialize_set_hash(self.set_hash, self.num_sets)
        elif is_power_of_two(self.num_sets):
            mask = self.num_sets - 1

            def index_fn(blk: int, _mask: int = mask) -> int:
                return blk & _mask
        else:
            sets = self.num_sets

            def index_fn(blk: int, _sets: int = sets) -> int:
                return blk % _sets
        object.__setattr__(self, "_index_fn", index_fn)

    # -- decomposition -----------------------------------------------------
    def byte_offset(self, byte_address: int) -> int:
        """Byte offset of ``byte_address`` within its line."""
        return byte_address & (self.line_size - 1)

    def block(self, byte_address: int) -> int:
        """Block number (line-aligned address divided by line size)."""
        return byte_address >> self._offset_bits

    def set_index(self, byte_address: int) -> int:
        """Set index for ``byte_address`` (after hashing, when enabled)."""
        return self._index_fn(byte_address >> self._offset_bits)

    def tag(self, byte_address: int) -> int:
        """Tag for ``byte_address``.

        The tag is simply the block number: keeping the full block number as
        the tag makes the structures hash-agnostic (two distinct blocks can
        never alias to the same tag) at the cost of a few wasted model bits,
        which is irrelevant for a functional simulator.
        """
        return self.block(byte_address)

    def decompose(self, byte_address: int) -> tuple[int, int, int]:
        """Return ``(tag, set_index, byte_offset)`` for ``byte_address``."""
        blk = byte_address >> self._offset_bits
        return (blk, self._index_fn(blk), byte_address & self._offset_mask)

    # -- reconstruction ----------------------------------------------------
    def block_to_byte(self, blk: int) -> int:
        """Return the base byte address of block ``blk``."""
        return blk << self._offset_bits

    @property
    def offset_bits(self) -> int:
        """Number of byte-offset bits."""
        return self._offset_bits

    @property
    def set_bits(self) -> int:
        """Number of set-index bits."""
        return self._set_bits
