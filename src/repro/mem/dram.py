"""GDDR5 DRAM latency / bandwidth model.

Table I configures GDDR5 with 16 banks, tCL=12, tRCD=12, tRAS=28; the GTX 480
baseline the paper models has ~177 GB/s of DRAM bandwidth, and Figure 12b
evaluates a doubled-bandwidth (340 GB/s) variant.

The model is deliberately first-order but captures the two properties the
paper's arguments rely on:

* a long fixed access latency (row activate + CAS + transfer), which is why
  statPCAL's L1-bypassing requests "still suffer from long DRAM delay", and
* a finite service bandwidth shared by all SMs, modelled as a small number of
  channels each of which can stream one 128-byte burst at a time.  When
  requests arrive faster than the channels can drain them, queueing delay
  grows -- this is what makes thrashing workloads collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DRAMConfig:
    """DRAM timing/bandwidth parameters (in SM core cycles)."""

    #: Fixed access latency (row activate + CAS + transfer + controller
    #: queues), in core cycles beyond the L2.  Fermi-class DRAM round trips
    #: are in the 400-600 cycle range including the interconnect.
    access_latency: int = 300
    #: Peak bandwidth in bytes per core cycle across all channels.
    #: 177 GB/s at the 1.4 GHz shader clock is ~126 B/cycle; rounded to 128.
    #: This is the *whole-chip* bandwidth; simulations that model fewer SMs
    #: than the chip has scale it down to the fair share (see
    #: :class:`repro.gpu.gpu.GPU`).
    bytes_per_cycle: float = 128.0
    #: Number of independent channels (burst engines).
    num_channels: int = 6
    #: Number of banks per channel (only used for address interleaving).
    banks_per_channel: int = 16
    #: Burst (transaction) size in bytes.
    burst_bytes: int = 128

    def scaled_bandwidth(self, factor: float) -> "DRAMConfig":
        """Return a copy with bandwidth scaled by ``factor`` (Fig. 12b)."""
        return DRAMConfig(
            access_latency=self.access_latency,
            bytes_per_cycle=self.bytes_per_cycle * factor,
            num_channels=self.num_channels,
            banks_per_channel=self.banks_per_channel,
            burst_bytes=self.burst_bytes,
        )

    @classmethod
    def gtx480(cls) -> "DRAMConfig":
        """Baseline GTX 480-like DRAM (177 GB/s class)."""
        return cls()

    @classmethod
    def gtx480_2x(cls) -> "DRAMConfig":
        """Doubled-bandwidth DRAM (Fig. 12b, 340 GB/s class)."""
        return cls().scaled_bandwidth(2.0)


@dataclass
class DRAMStats:
    """DRAM service statistics."""

    requests: int = 0
    bytes_transferred: int = 0
    total_queue_delay: int = 0
    busy_cycles: float = 0.0
    #: Requests that queued behind a burst issued by a *different* requester
    #: (SM).  This is the inter-SM DRAM contention signal the lock-step
    #: backend surfaces; it stays zero for single-SM simulations.
    inter_requester_conflicts: int = 0
    #: The same conflicts broken down by the *suffering* requester (the SM
    #: whose request queued).  Sums to ``inter_requester_conflicts``; the
    #: multi-tenant driver attributes each tenant its partition's share.
    conflicts_by_requester: dict[int, int] = field(default_factory=dict)

    @property
    def mean_queue_delay(self) -> float:
        """Average cycles a request waited for a free channel."""
        return self.total_queue_delay / self.requests if self.requests else 0.0


class DRAMModel:
    """Channel-interleaved DRAM service model.

    :meth:`service` returns the absolute cycle at which a 128-byte request
    issued at ``now`` completes, accounting for per-channel queueing.
    """

    def __init__(self, config: DRAMConfig | None = None) -> None:
        self.config = config or DRAMConfig()
        if self.config.num_channels <= 0:
            raise ValueError("DRAM needs at least one channel")
        if self.config.bytes_per_cycle <= 0:
            raise ValueError("DRAM bandwidth must be positive")
        self._channel_free_at = [0.0] * self.config.num_channels
        self._channel_last_requester = [-1] * self.config.num_channels
        self.stats = DRAMStats()

    # ------------------------------------------------------------------
    def _channel_of(self, block: int) -> int:
        """Interleave blocks across channels."""
        return block % self.config.num_channels

    def burst_cycles(self) -> float:
        """Cycles one channel needs to stream one burst."""
        per_channel_bw = self.config.bytes_per_cycle / self.config.num_channels
        return self.config.burst_bytes / per_channel_bw

    def service(
        self, block: int, now: int, *, is_write: bool = False, requester: int = -1
    ) -> int:
        """Schedule one 128-byte request; returns its completion cycle.

        Writes occupy channel bandwidth but complete (from the requester's
        point of view) after posting, which the caller models by ignoring the
        returned time for stores.  ``requester`` identifies the SM the
        request came from (-1 when unknown) and only feeds the
        inter-requester contention counter.
        """
        channel = self._channel_of(block)
        burst = self.burst_cycles()
        start = max(float(now), self._channel_free_at[channel])
        queue_delay = start - now
        previous = self._channel_last_requester[channel]
        if queue_delay > 0 and requester >= 0 and previous >= 0 and previous != requester:
            self.stats.inter_requester_conflicts += 1
            self.stats.conflicts_by_requester[requester] = (
                self.stats.conflicts_by_requester.get(requester, 0) + 1
            )
        self._channel_last_requester[channel] = requester
        self._channel_free_at[channel] = start + burst
        completion = start + burst + self.config.access_latency
        self.stats.requests += 1
        self.stats.bytes_transferred += self.config.burst_bytes
        self.stats.total_queue_delay += int(queue_delay)
        self.stats.busy_cycles += burst
        return int(completion)

    # ------------------------------------------------------------------
    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of total channel-cycles spent bursting data."""
        if elapsed_cycles <= 0:
            return 0.0
        total_capacity = elapsed_cycles * self.config.num_channels
        return min(1.0, self.stats.busy_cycles / total_capacity)

    def pending_backlog(self, now: int) -> float:
        """Cycles until the most-backlogged channel is free (congestion signal)."""
        return max(0.0, max(self._channel_free_at) - now)
