"""Set-index hashing functions.

The evaluation in the paper enhances the baseline L1D and L2 caches with an
XOR-based set-index hashing technique (Section V-A, citing the detailed GPU
cache model of Nugteren et al. [26]) so that the simulated cache behaviour
matches real Fermi-class devices, which do not use a plain modulo mapping.

Three mappings are provided:

* :func:`linear_set_index` -- conventional ``block mod num_sets``.
* :func:`xor_set_index` -- folds the upper address bits onto the index bits
  with XOR, which spreads power-of-two strides across sets.
* :func:`ipoly_set_index` -- an irreducible-polynomial style hash that mixes
  more bits; useful for sensitivity studies.
"""

from __future__ import annotations

from typing import Callable

from repro.mem.address import ilog2, is_power_of_two

SetHash = Callable[[int, int], int]


def linear_set_index(block_addr: int, num_sets: int) -> int:
    """Conventional modulo set mapping."""
    if is_power_of_two(num_sets):
        return block_addr & (num_sets - 1)
    return block_addr % num_sets


def xor_set_index(block_addr: int, num_sets: int) -> int:
    """XOR-fold the block address down to ``log2(num_sets)`` bits.

    Every ``log2(num_sets)``-bit slice of the block address is XOR-ed
    together.  Power-of-two strided streams (ubiquitous in the PolyBench
    kernels) therefore no longer map onto a single set, mirroring the
    behaviour of the hashed set index functions observed on real GPUs.

    Non-power-of-two set counts (the 768-set L2) fold over the next power of
    two and reduce modulo ``num_sets``.
    """
    if is_power_of_two(num_sets):
        bits = ilog2(num_sets)
        mask = num_sets - 1
    else:
        bits = num_sets.bit_length()
        mask = (1 << bits) - 1
    index = 0
    remaining = block_addr
    while remaining:
        index ^= remaining & mask
        remaining >>= bits
    if not is_power_of_two(num_sets):
        index %= num_sets
    return index


#: Default irreducible polynomial (degree 16) used by :func:`ipoly_set_index`.
_DEFAULT_POLY = 0x1021  # CRC-CCITT polynomial, chosen for good bit mixing.


def ipoly_set_index(block_addr: int, num_sets: int, polynomial: int = _DEFAULT_POLY) -> int:
    """Polynomial (CRC-style) hash of the block address.

    Mixes all address bits through a CRC-16 style feedback shift register and
    truncates the result to the index width.  Stronger mixing than
    :func:`xor_set_index`, exposed for the cache-configuration sensitivity
    studies.
    """
    crc = 0xFFFF
    value = block_addr
    while value:
        crc ^= (value & 0xFF) << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ polynomial) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        value >>= 8
    return crc & (num_sets - 1)


_HASHES: dict[str, SetHash] = {
    "linear": linear_set_index,
    "xor": xor_set_index,
    "ipoly": ipoly_set_index,
}


def get_set_hash(name: str) -> SetHash:
    """Look up a set-index hash by name (``linear``, ``xor`` or ``ipoly``)."""
    try:
        return _HASHES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown set hash {name!r}; expected one of {sorted(_HASHES)}"
        ) from exc


def specialize_set_hash(set_hash: SetHash, num_sets: int) -> Callable[[int], int]:
    """Bind ``set_hash`` to ``num_sets`` with per-call constants hoisted.

    The set index is computed for every cache probe on the simulator's hot
    path; the generic two-argument hashes re-derive their bit widths and
    masks on every call.  This returns a one-argument closure with those
    constants folded in — bit-identical to calling ``set_hash(block,
    num_sets)`` directly (the generic fallback does exactly that).
    """
    if set_hash is xor_set_index:
        if is_power_of_two(num_sets):
            bits = ilog2(num_sets)
            mask = num_sets - 1

            def xor_pow2(block_addr: int) -> int:
                index = 0
                while block_addr:
                    index ^= block_addr & mask
                    block_addr >>= bits
                return index

            return xor_pow2
        bits = num_sets.bit_length()
        mask = (1 << bits) - 1

        def xor_mod(block_addr: int) -> int:
            index = 0
            while block_addr:
                index ^= block_addr & mask
                block_addr >>= bits
            return index % num_sets

        return xor_mod
    if set_hash is linear_set_index:
        if is_power_of_two(num_sets):
            mask = num_sets - 1
            return lambda block_addr: block_addr & mask
        return lambda block_addr: block_addr % num_sets
    return lambda block_addr: set_hash(block_addr, num_sets)
