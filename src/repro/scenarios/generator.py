"""Seeded co-location scenario generation.

:func:`generate_scenarios` is a deterministic sampler over the co-location
design space: workload mixes (cache thrashers, streaming kernels,
compute-bound tenants), machine sizes, contiguous SM partitions, scheduler
assignments and staggered kernel launch cycles.  The same ``seed`` always
yields the same scenario list — and therefore the same
:meth:`repro.api.MultiTenantRequest.cache_key` for every scenario — so
generated suites are as reproducible as the hand-written library and replay
for free out of the content-addressed result cache.

The generator is deliberately also the engine's fuzzer: every sample is a
valid :class:`~repro.scenarios.library.ColocationScenario` (distinct address
spaces, disjoint gap-free partitions, non-negative launch offsets), but the
mixes it reaches — four-tenant machines, staggered arrivals mid-thrash,
schedulers the hand-written suite never co-locates — exercise lock-step
paths no golden covers.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.harness.parallel import derive_seed
from repro.scenarios.library import ColocationScenario

#: Workload pool the sampler draws from: every APKI band of Table II —
#: thrashers (SM, ATAX, GESUMMV), streaming/irregular (KMN, WC, II),
#: moderate (SYRK, SYR2K, BICG, MVT) and compute-bound (2DCONV).
BENCHMARK_POOL: tuple[str, ...] = (
    "ATAX",
    "BICG",
    "MVT",
    "GESUMMV",
    "SYRK",
    "SYR2K",
    "2DCONV",
    "KMN",
    "SM",
    "WC",
    "II",
)

#: Scheduler pool: the baselines plus CIAO-C (the paper's headline scheme).
SCHEDULER_POOL: tuple[str, ...] = (
    "gto",
    "lrr",
    "ccws",
    "best-swl",
    "two-level",
    "ciao-c",
)

#: Upper bound (exclusive) on sampled launch-cycle offsets.  Small relative
#: to typical run lengths (tens of thousands of cycles at scale 0.05) so a
#: staggered tenant still overlaps every neighbour.
DEFAULT_STAGGER_SPAN = 2000


def generate_scenario(
    seed: int,
    index: int = 0,
    *,
    scale: float = 0.05,
    max_sms: int = 5,
    max_tenants: int = 4,
    stagger_span: int = DEFAULT_STAGGER_SPAN,
    benchmarks: Sequence[str] = BENCHMARK_POOL,
    schedulers: Sequence[str] = SCHEDULER_POOL,
    name: Optional[str] = None,
) -> ColocationScenario:
    """Sample scenario ``index`` of the stream identified by ``seed``.

    Deterministic: each (seed, index) pair owns an independent RNG stream
    (:func:`repro.harness.parallel.derive_seed`), so scenario ``i`` is the
    same object whether generated alone or as part of a batch.
    """
    rng = random.Random(derive_seed(seed, "scenario", index))
    num_sms = rng.randint(2, max_sms)
    num_tenants = rng.randint(2, min(max_tenants, num_sms))
    cuts = sorted(rng.sample(range(1, num_sms), num_tenants - 1))
    bounds = [0, *cuts, num_sms]
    partitions = [
        tuple(range(lo, hi)) for lo, hi in zip(bounds, bounds[1:])
    ]
    tenants = []
    for tenant_index, sm_ids in enumerate(partitions):
        benchmark = rng.choice(list(benchmarks))
        scheduler = rng.choice(list(schedulers))
        tenants.append((f"t{tenant_index}-{benchmark}", benchmark, scheduler, sm_ids))
    # Half the stream launches simultaneously (the classic path, and the
    # parity anchor); the other half staggers later tenants' arrivals.
    if stagger_span > 0 and rng.random() < 0.5:
        launch_cycles = tuple(
            0 if i == 0 else rng.randrange(0, stagger_span)
            for i in range(num_tenants)
        )
        if not any(launch_cycles):
            launch_cycles = ()
    else:
        launch_cycles = ()
    sim_seed = rng.randint(1, 9999)
    stagger = "staggered" if any(launch_cycles) else "simultaneous"
    return ColocationScenario(
        name=name or f"gen-{seed}-{index}",
        description=(
            f"generated (seed {seed}, index {index}): {num_tenants} tenants "
            f"on {num_sms} SMs, {stagger} launch"
        ),
        tenants=tuple(tenants),
        scale=scale,
        seed=sim_seed,
        launch_cycles=launch_cycles,
    )


def generate_scenarios(
    seed: int,
    count: int,
    **kwargs,
) -> list[ColocationScenario]:
    """Sample ``count`` scenarios from the stream identified by ``seed``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return [generate_scenario(seed, index, **kwargs) for index in range(count)]
