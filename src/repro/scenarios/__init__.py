"""``repro.scenarios`` — seeded scenario generation, search and promotion.

The subsystem behind ``repro scenarios generate|search|promote``:

* :mod:`repro.scenarios.library` — the named scenario library
  (:class:`ColocationScenario`, :data:`COLOCATION_SCENARIOS`): hand-written
  built-ins plus promoted search discoveries (``promoted.json``).
* :mod:`repro.scenarios.generator` — deterministic samplers over workload
  mixes, SM partitions, scheduler assignments and staggered launch cycles
  (same seed, same scenarios, same cache keys).
* :mod:`repro.scenarios.search` — hill climbing with random restarts
  maximising the worst per-tenant slowdown, cache-backed and ledgered.
* :mod:`repro.scenarios.promote` — pinning discovered worst cases into the
  library (and, via ``scripts/regen_goldens.py``, the golden fixtures).
"""

from repro.scenarios.generator import (
    BENCHMARK_POOL,
    SCHEDULER_POOL,
    generate_scenario,
    generate_scenarios,
)
from repro.scenarios.library import (
    BUILTIN_SCENARIO_NAMES,
    COLOCATION_SCENARIOS,
    PROMOTED_PATH,
    SCENARIO_SCHEMA,
    ColocationScenario,
    colocation_scenario,
    colocation_scenario_names,
    load_promoted,
    scenario_from_json,
)
from repro.scenarios.promote import promote, promoted_from_search
from repro.scenarios.search import (
    Evaluation,
    SearchOutcome,
    builtin_best,
    evaluate_scenario,
    search,
)

__all__ = [
    "BENCHMARK_POOL",
    "BUILTIN_SCENARIO_NAMES",
    "COLOCATION_SCENARIOS",
    "ColocationScenario",
    "Evaluation",
    "PROMOTED_PATH",
    "SCENARIO_SCHEMA",
    "SCHEDULER_POOL",
    "SearchOutcome",
    "builtin_best",
    "colocation_scenario",
    "colocation_scenario_names",
    "evaluate_scenario",
    "generate_scenario",
    "generate_scenarios",
    "load_promoted",
    "promote",
    "promoted_from_search",
    "scenario_from_json",
    "search",
]
