"""Promotion of discovered worst cases into the named scenario library.

A search run (:func:`repro.scenarios.search.search`) leaves a ledger of
evaluated points; :func:`promote` pins chosen ones into ``promoted.json``
next to the library module, where :mod:`repro.scenarios.library` loads them
at import time as first-class named scenarios.  Promoted scenarios then ride
every surface the hand-written ones do — ``repro run --scenario``, the
``colocation_interference`` experiment, and (after a
``scripts/regen_goldens.py`` run) the bit-exact golden fixtures.

The workflow is documented in docs/EXPERIMENTS.md; the CLI front end is
``repro scenarios promote``.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Optional, Sequence

from repro.scenarios.library import (
    BUILTIN_SCENARIO_NAMES,
    PROMOTED_PATH,
    SCENARIO_SCHEMA,
    ColocationScenario,
    load_promoted,
)
from repro.scenarios.search import SearchOutcome


def promoted_from_search(
    outcome: SearchOutcome,
    *,
    top_k: int = 2,
    name_prefix: str = "discovered",
) -> list[ColocationScenario]:
    """The ``top_k`` distinct best scenarios of a search, renamed for the library.

    Names are ``{prefix}-{rank}-{objective}`` (rank 1 = worst interference
    found) so a promoted entry's provenance is legible in ``repro list``.
    """
    promoted = []
    for rank, row in enumerate(outcome.top(top_k), start=1):
        promoted.append(
            replace(
                row.scenario,
                name=f"{name_prefix}-{rank}",
                description=(
                    f"{row.scenario.description}; promoted with max slowdown "
                    f"{row.objective:.3f}"
                ),
            )
        )
    return promoted


def promote(
    scenarios: Sequence[ColocationScenario],
    *,
    path: Optional[Path] = None,
    merge: bool = True,
) -> list[ColocationScenario]:
    """Pin ``scenarios`` into the promoted fixture; returns the full list.

    ``merge=True`` (the default) keeps existing promoted entries, replacing
    any with the same name; ``merge=False`` rewrites the fixture from
    scratch.  Promoted names must not collide with built-ins.  The library
    picks the fixture up on the next import — re-run
    ``scripts/regen_goldens.py`` afterwards to pin the new entries'
    results bit-for-bit.
    """
    path = PROMOTED_PATH if path is None else path
    entries: dict[str, ColocationScenario] = {}
    if merge:
        for scenario in load_promoted(path):
            entries[scenario.name] = scenario
    for scenario in scenarios:
        if scenario.name in BUILTIN_SCENARIO_NAMES:
            raise ValueError(
                f"cannot promote {scenario.name!r}: collides with a built-in scenario"
            )
        # Fails loudly on inconsistent specs before they reach the fixture.
        scenario.request().validate()
        entries[scenario.name] = scenario
    ordered = [entries[name] for name in sorted(entries)]
    payload = {
        "schema": SCENARIO_SCHEMA,
        "regen": "repro scenarios promote (see docs/EXPERIMENTS.md)",
        "scenarios": [scenario.to_json() for scenario in ordered],
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return ordered
