"""Property-based search for worst-case co-location interference.

:func:`search` drives hill climbing with random restarts over the scenario
space — SM partition sizes, workload mixes, scheduler assignments, staggered
launch offsets and workload seeds — maximising the worst per-tenant slowdown
reported by :func:`repro.analysis.metrics.tenant_slowdowns`.

Every evaluation is submitted through the sweep engine
(:func:`repro.harness.parallel.run_jobs`) and therefore the content-addressed
result cache: re-running a search with the same seed replays entirely out of
the cache, and a *larger* budget resumes where the smaller one left off —
only new points simulate.  An in-memory ledger additionally dedupes points
within one search (mutations frequently revisit neighbours) and records
every evaluated point with its request cache key and objective, so a search
report is a reproducible artifact: any row can be re-simulated bit-for-bit
from its scenario spec.

The search is fully deterministic for a given ``(seed, restarts, steps)``
budget — the acceptance test pins one small budget and asserts the driver
rediscovers interference at least as bad as the worst hand-written scenario.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.metrics import tenant_slowdowns
from repro.harness.parallel import derive_seed, run_jobs
from repro.scenarios.generator import (
    BENCHMARK_POOL,
    DEFAULT_STAGGER_SPAN,
    SCHEDULER_POOL,
    generate_scenario,
)
from repro.scenarios.library import (
    BUILTIN_SCENARIO_NAMES,
    COLOCATION_SCENARIOS,
    ColocationScenario,
)


@dataclass(frozen=True)
class Evaluation:
    """One evaluated point of the search space (a ledger row)."""

    scenario: ColocationScenario
    #: The colocated request's content-addressed cache key: re-simulating
    #: the row's scenario spec reproduces the objective bit-for-bit.
    cache_key: str
    #: max per-tenant slowdown (the search objective).
    objective: float
    #: per-tenant slowdown values behind the objective.
    slowdowns: dict[str, float]
    restart: int
    step: int
    accepted: bool


@dataclass
class SearchOutcome:
    """Result of one :func:`search` run."""

    best: ColocationScenario
    best_objective: float
    ledger: list[Evaluation] = field(default_factory=list)
    #: Points actually simulated (ledger rows minus in-memory dedupe hits).
    evaluations: int = 0
    #: Proposals answered from the in-memory ledger without simulating.
    reused: int = 0

    def top(self, k: int) -> list[Evaluation]:
        """The ``k`` best *distinct* evaluated points, best first."""
        best_by_key: dict[str, Evaluation] = {}
        for row in self.ledger:
            kept = best_by_key.get(row.cache_key)
            if kept is None or row.objective > kept.objective:
                best_by_key[row.cache_key] = row
        ranked = sorted(
            best_by_key.values(), key=lambda row: (-row.objective, row.cache_key)
        )
        return ranked[:k]


def evaluate_scenario(
    scenario: ColocationScenario,
    *,
    workers: Optional[int] = None,
    cache="auto",
) -> tuple[float, dict[str, float], str]:
    """Objective of one scenario: its worst per-tenant slowdown.

    Submits the co-located run plus one isolated baseline per tenant through
    the sweep engine (cache-aware), and returns ``(objective, per-tenant
    slowdowns, colocated cache key)``.
    """
    request = scenario.request()
    jobs = [request] + [request.isolated_request(t.name) for t in request.tenants]
    outcome = run_jobs(jobs, workers=workers, cache=cache)
    colocated = outcome.results[0]
    isolated = {
        tenant.name: result
        for tenant, result in zip(request.tenants, outcome.results[1:])
    }
    report = tenant_slowdowns(colocated, isolated)
    slowdowns = {name: row["slowdown"] for name, row in report.items()}
    objective = max(slowdowns.values(), default=0.0)
    return objective, slowdowns, request.cache_key()


def builtin_best(
    *,
    scale: float = 0.05,
    workers: Optional[int] = None,
    cache="auto",
) -> tuple[str, float]:
    """Worst hand-written scenario at ``scale``: the search acceptance bar."""
    best_name, best_objective = "", 0.0
    for name in BUILTIN_SCENARIO_NAMES:
        scenario = COLOCATION_SCENARIOS[name]
        objective, _, _ = evaluate_scenario(
            ColocationScenario(
                name=scenario.name,
                description=scenario.description,
                tenants=scenario.tenants,
                scale=scale,
                seed=scenario.seed,
                launch_cycles=scenario.launch_cycles,
            ),
            workers=workers,
            cache=cache,
        )
        if objective > best_objective:
            best_name, best_objective = name, objective
    return best_name, best_objective


# ---------------------------------------------------------------------------
# The search space: normalized points and mutations
# ---------------------------------------------------------------------------
def _normalize(scenario: ColocationScenario):
    """Reduce a scenario to its mutable coordinates.

    Partitions are kept as contiguous *sizes* (every generated scenario is
    contiguous; mutations preserve it), so boundary moves can never produce
    an invalid partition.
    """
    sizes = tuple(len(sm_ids) for _, _, _, sm_ids in scenario.tenants)
    benchmarks = tuple(benchmark for _, benchmark, _, _ in scenario.tenants)
    schedulers = tuple(scheduler for _, _, scheduler, _ in scenario.tenants)
    launches = scenario.launch_cycles or (0,) * len(sizes)
    return sizes, benchmarks, schedulers, launches, scenario.seed


def _materialize(
    point, *, name: str, description: str, scale: float
) -> ColocationScenario:
    """Inverse of :func:`_normalize`: rebuild the scenario from coordinates."""
    sizes, benchmarks, schedulers, launches, seed = point
    tenants = []
    start = 0
    for index, size in enumerate(sizes):
        sm_ids = tuple(range(start, start + size))
        start += size
        tenants.append(
            (f"t{index}-{benchmarks[index]}", benchmarks[index], schedulers[index], sm_ids)
        )
    return ColocationScenario(
        name=name,
        description=description,
        tenants=tuple(tenants),
        scale=scale,
        seed=seed,
        launch_cycles=launches if any(launches) else (),
    )


def _mutate(point, rng: random.Random, *, benchmarks, schedulers, stagger_span):
    """One random neighbour of ``point`` (always a valid scenario)."""
    sizes, benches, scheds, launches, seed = point
    n = len(sizes)
    ops = ["benchmark", "scheduler", "stagger", "reseed"]
    if n > 1 and max(sizes) > 1:
        ops.append("boundary")
    if n > 1:
        ops.append("swap")
    op = rng.choice(ops)
    if op == "boundary":
        donors = [i for i, size in enumerate(sizes) if size > 1]
        donor = rng.choice(donors)
        receiver = rng.choice([i for i in range(n) if i != donor])
        sizes = tuple(
            size + (1 if i == receiver else -1 if i == donor else 0)
            for i, size in enumerate(sizes)
        )
    elif op == "swap":
        i, j = rng.sample(range(n), 2)
        benches = list(benches)
        benches[i], benches[j] = benches[j], benches[i]
        benches = tuple(benches)
    elif op == "benchmark":
        i = rng.randrange(n)
        benches = tuple(
            rng.choice(list(benchmarks)) if k == i else b for k, b in enumerate(benches)
        )
    elif op == "scheduler":
        i = rng.randrange(n)
        scheds = tuple(
            rng.choice(list(schedulers)) if k == i else s for k, s in enumerate(scheds)
        )
    elif op == "stagger":
        i = rng.randrange(n)
        offset = 0 if rng.random() < 0.5 else rng.randrange(0, max(stagger_span, 1))
        launches = tuple(offset if k == i else v for k, v in enumerate(launches))
    else:  # reseed
        seed = rng.randint(1, 9999)
    return sizes, benches, scheds, launches, seed


def search(
    seed: int,
    *,
    restarts: int = 3,
    steps: int = 5,
    scale: float = 0.05,
    max_sms: int = 5,
    max_tenants: int = 4,
    stagger_span: int = DEFAULT_STAGGER_SPAN,
    benchmarks: Sequence[str] = BENCHMARK_POOL,
    schedulers: Sequence[str] = SCHEDULER_POOL,
    workers: Optional[int] = None,
    cache="auto",
) -> SearchOutcome:
    """Hill-climb with random restarts for the worst co-location slowdown.

    ``restarts`` independent climbs, each starting from scenario ``r`` of
    the generator stream ``seed`` and taking ``steps`` mutation proposals
    (accepting strict improvements).  Deterministic for a fixed budget;
    evaluated points are recorded in :attr:`SearchOutcome.ledger` and
    deduped both in memory and — across separate runs — by the result cache.
    """
    if restarts < 1:
        raise ValueError("search needs at least one restart")
    if steps < 0:
        raise ValueError("steps must be non-negative")
    ledger: list[Evaluation] = []
    seen: dict[str, tuple[float, dict[str, float]]] = {}
    outcome = SearchOutcome(best=None, best_objective=float("-inf"))  # type: ignore[arg-type]

    def measure(scenario, restart, step, current_objective):
        objective, slowdowns, key = None, None, None
        request_key = scenario.request().cache_key()
        if request_key in seen:
            objective, slowdowns = seen[request_key]
            outcome.reused += 1
        else:
            objective, slowdowns, request_key = evaluate_scenario(
                scenario, workers=workers, cache=cache
            )
            seen[request_key] = (objective, slowdowns)
            outcome.evaluations += 1
        accepted = objective > current_objective
        ledger.append(
            Evaluation(
                scenario=scenario,
                cache_key=request_key,
                objective=objective,
                slowdowns=slowdowns,
                restart=restart,
                step=step,
                accepted=accepted,
            )
        )
        if objective > outcome.best_objective:
            outcome.best = scenario
            outcome.best_objective = objective
        return objective, accepted

    for restart in range(restarts):
        current = generate_scenario(
            seed,
            restart,
            scale=scale,
            max_sms=max_sms,
            max_tenants=max_tenants,
            stagger_span=stagger_span,
            benchmarks=benchmarks,
            schedulers=schedulers,
            name=f"search-{seed}-r{restart}",
        )
        current_objective, _ = measure(current, restart, 0, float("-inf"))
        rng = random.Random(derive_seed(seed, "mutate", restart))
        point = _normalize(current)
        for step in range(1, steps + 1):
            proposal_point = _mutate(
                point,
                rng,
                benchmarks=benchmarks,
                schedulers=schedulers,
                stagger_span=stagger_span,
            )
            proposal = _materialize(
                proposal_point,
                name=f"search-{seed}-r{restart}-s{step}",
                description=(
                    f"search (seed {seed}, restart {restart}, step {step})"
                ),
                scale=scale,
            )
            objective, accepted = measure(proposal, restart, step, current_objective)
            if accepted:
                point, current_objective = proposal_point, objective
    outcome.ledger = ledger
    return outcome
