"""The named co-location scenario library.

:class:`ColocationScenario` is the reproducible unit of the co-location
evaluation: a named tenant mix (kernel x scheduler x SM partition, plus
optional staggered launch cycles), pinned to a scale and seed so a bare
``repro run --scenario NAME`` regenerates the same numbers forever.

:data:`COLOCATION_SCENARIOS` holds the library in presentation order: the
hand-written built-ins first, then every *promoted* scenario — worst cases
discovered by the seeded search driver (:mod:`repro.scenarios.search`) and
pinned into ``promoted.json`` next to this module (see
:mod:`repro.scenarios.promote`).  Promoted entries are full library members:
``repro run --scenario`` accepts them and ``scripts/regen_goldens.py`` pins
their results bit-for-bit.

This module is the canonical home of the scenario types;
:mod:`repro.harness.experiments` re-exports them for compatibility.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

from repro.api import MultiTenantRequest, RunConfig, TenantSpec

#: Version of the scenario JSON form (``to_json`` / ``from_json``), shared
#: by ``promoted.json`` and the ``repro scenarios generate`` output.
SCENARIO_SCHEMA = 1

#: The promoted-scenario fixture committed next to this module.
PROMOTED_PATH = Path(__file__).parent / "promoted.json"


@dataclass(frozen=True)
class ColocationScenario:
    """One named co-location experiment: tenants, partition, pinned sizing.

    ``tenants`` lists ``(name, benchmark, scheduler, sm_ids)``; every tenant
    automatically receives a distinct address space (separate processes, so
    working sets only interact through cache capacity and bandwidth).
    ``scale`` / ``seed`` are the scenario's *pinned* sizing — the numbers a
    bare ``repro run --scenario NAME`` reproduces — and can be overridden.

    ``launch_cycles`` optionally staggers the tenants' kernel launches (one
    global arrival cycle per tenant, in ``tenants`` order); empty means every
    tenant launches at cycle 0, the classic simultaneous path.
    """

    name: str
    description: str
    tenants: tuple[tuple[str, str, str, tuple[int, ...]], ...]
    scale: float = 0.1
    seed: int = 1
    launch_cycles: tuple[int, ...] = field(default=())

    def request(
        self,
        *,
        scale: Optional[float] = None,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> MultiTenantRequest:
        """Build the scenario's :class:`MultiTenantRequest`."""
        config = RunConfig(
            scale=self.scale if scale is None else scale,
            seed=self.seed if seed is None else seed,
        )
        launches = self.launch_cycles or (0,) * len(self.tenants)
        if len(launches) != len(self.tenants):
            raise ValueError(
                f"scenario {self.name!r} pins {len(self.launch_cycles)} launch "
                f"cycles for {len(self.tenants)} tenants"
            )
        return MultiTenantRequest(
            tenants=tuple(
                TenantSpec(
                    name=name,
                    benchmark=benchmark,
                    scheduler=scheduler,
                    sm_ids=tuple(sm_ids),
                    address_space=index + 1,
                    launch_cycle=launches[index],
                )
                for index, (name, benchmark, scheduler, sm_ids) in enumerate(self.tenants)
            ),
            run_config=config,
            tag=f"scenario:{self.name}",
            backend=backend,
        )

    # -- JSON form (promoted.json, `repro scenarios generate` output) ---
    def to_json(self) -> dict:
        """Plain-JSON form; :func:`scenario_from_json` restores it."""
        payload: dict = {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "tenants": [
                {
                    "name": name,
                    "benchmark": benchmark,
                    "scheduler": scheduler,
                    "sm_ids": list(sm_ids),
                }
                for name, benchmark, scheduler, sm_ids in self.tenants
            ],
            "scale": self.scale,
            "seed": self.seed,
        }
        if self.launch_cycles:
            payload["launch_cycles"] = list(self.launch_cycles)
        return payload


def scenario_from_json(payload: Mapping) -> ColocationScenario:
    """Inverse of :meth:`ColocationScenario.to_json` (``ValueError`` on drift)."""
    if payload.get("schema") != SCENARIO_SCHEMA:
        raise ValueError(
            f"unsupported scenario schema {payload.get('schema')!r} "
            f"(supported: {SCENARIO_SCHEMA})"
        )
    return ColocationScenario(
        name=payload["name"],
        description=payload["description"],
        tenants=tuple(
            (t["name"], t["benchmark"], t["scheduler"], tuple(t["sm_ids"]))
            for t in payload["tenants"]
        ),
        scale=payload["scale"],
        seed=payload["seed"],
        launch_cycles=tuple(payload.get("launch_cycles", ())),
    )


#: Named co-location scenarios, in presentation order.  SM (Mars, APKI 140)
#: is the canonical cache-thrasher, 2DCONV (PolyBench CI, APKI 9) the
#: canonical compute-bound tenant; the pinned pairing demonstrably shows
#: per-tenant slowdown > 1.0 vs isolated runs (tests/test_multi_tenant.py).
#: Promoted search discoveries (``promoted.json``) are appended below.
COLOCATION_SCENARIOS: dict[str, ColocationScenario] = {
    scenario.name: scenario
    for scenario in (
        ColocationScenario(
            name="thrash-vs-compute",
            description="cache-thrasher (SM) next to a compute-bound tenant (2DCONV)",
            tenants=(
                ("thrash", "SM", "gto", (0,)),
                ("compute", "2DCONV", "gto", (1,)),
            ),
        ),
        ColocationScenario(
            name="symmetric-thrash",
            description="two identical cache-thrashers (ATAX) fighting over L2/DRAM",
            tenants=(
                ("left", "ATAX", "gto", (0,)),
                ("right", "ATAX", "gto", (1,)),
            ),
        ),
        ColocationScenario(
            name="mixed-schedulers",
            description="same workload, GTO vs CIAO-C side by side",
            tenants=(
                ("gto", "ATAX", "gto", (0,)),
                ("ciao", "ATAX", "ciao-c", (1,)),
            ),
        ),
        ColocationScenario(
            name="asymmetric-split",
            description="high-APKI tenant on two SMs vs compute-bound tenant on one",
            tenants=(
                ("wide", "GESUMMV", "gto", (0, 1)),
                ("narrow", "2DCONV", "gto", (2,)),
            ),
        ),
        ColocationScenario(
            name="quad-stress",
            description="four tenants, one SM each, mixed workload classes",
            tenants=(
                ("lws", "ATAX", "gto", (0,)),
                ("sws", "SYRK", "gto", (1,)),
                ("mapreduce", "SM", "gto", (2,)),
                ("compute", "2DCONV", "gto", (3,)),
            ),
        ),
        ColocationScenario(
            name="ciao-shield",
            description="does CIAO-C protect a thrashed tenant better than GTO?",
            tenants=(
                ("shielded", "SYRK", "ciao-c", (0,)),
                ("aggressor", "SM", "gto", (1,)),
            ),
        ),
    )
}

#: Names of the hand-written scenarios above (promoted entries excluded) —
#: the search acceptance bar compares discovered slowdowns against these.
BUILTIN_SCENARIO_NAMES: tuple[str, ...] = tuple(COLOCATION_SCENARIOS)


def load_promoted(path: Optional[Path] = None) -> list[ColocationScenario]:
    """Read the promoted-scenario fixture (empty list when absent)."""
    path = PROMOTED_PATH if path is None else path
    if not path.exists():
        return []
    payload = json.loads(path.read_text())
    return [scenario_from_json(entry) for entry in payload["scenarios"]]


def _install_promoted() -> None:
    for scenario in load_promoted():
        # Promoted names must not shadow a built-in: the fixture is
        # machine-written, so fail loudly rather than silently replace.
        if scenario.name in BUILTIN_SCENARIO_NAMES:
            raise ValueError(
                f"promoted scenario {scenario.name!r} collides with a built-in"
            )
        COLOCATION_SCENARIOS[scenario.name] = scenario


_install_promoted()


def colocation_scenario_names() -> tuple[str, ...]:
    """Names of every library scenario (built-ins first, then promoted)."""
    return tuple(COLOCATION_SCENARIOS)


def colocation_scenario(
    name: str,
    *,
    scale: Optional[float] = None,
    seed: Optional[int] = None,
    backend: Optional[str] = None,
) -> MultiTenantRequest:
    """Build the named scenario's request (``KeyError`` for unknown names)."""
    scenario = COLOCATION_SCENARIOS.get(name)
    if scenario is None:
        raise KeyError(
            f"unknown scenario {name!r} (known: {', '.join(COLOCATION_SCENARIOS)})"
        )
    return scenario.request(scale=scale, seed=seed, backend=backend)
