"""CIAO warp scheduling (Algorithm 1) in its three variants.

* **CIAO-P** (``PARTITION_ONLY``): only the on-chip memory architecture is
  used -- severely interfering warps have their global requests redirected
  to the shared-memory cache; no warp is ever stalled.
* **CIAO-T** (``THROTTLE_ONLY``): only selective throttling is used -- the
  most-interfering warp of a severely interfered warp is stalled (V bit
  cleared); nothing is redirected.
* **CIAO-C** (``COMBINED``): the full scheme.  An interfering warp is first
  isolated; if, while isolated, it keeps causing severe interference (now in
  the shared-memory cache, which shares the same VTA), it is stalled.

Decisions are re-evaluated on an instruction-count epoch basis
(Section IV-A): every *high-cutoff epoch* (5000 instructions) warps whose
IRS exceeds the high cutoff get their top interferer isolated or stalled;
every *low-cutoff epoch* (100 instructions) previously isolated / stalled
warps are released as soon as the warp that triggered the action either
finished or no longer suffers interference (IRS below the low cutoff).
Warp ordering between eligible warps is GTO, as in the paper's methodology.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.core.ciao_memory import CIAOOnChipMemory
from repro.core.config import CIAOParameters
from repro.core.interference import InterferenceDetector
from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.mem.victim_tag_array import VTAHit
from repro.sched.base import WarpScheduler


class CIAOMode(enum.Enum):
    """Which CIAO mechanisms are enabled."""

    PARTITION_ONLY = "ciao-p"
    THROTTLE_ONLY = "ciao-t"
    COMBINED = "ciao-c"


class CIAOScheduler(WarpScheduler):
    """Cache Interference-Aware thrOughput-oriented warp scheduler."""

    # GTO ordering: select re-picks the last-issued warp while it can issue.
    # notify_issue runs the instruction-count epoch checks, so it must be
    # called once per issued instruction (vector_notify_greedy_only stays
    # False and the vector engine notifies per instruction inside batches).
    vector_sticky_select = True
    vector_select_pure_greedy = True

    def __init__(
        self,
        mode: CIAOMode = CIAOMode.COMBINED,
        params: Optional[CIAOParameters] = None,
    ) -> None:
        super().__init__()
        self.mode = mode
        self.params = params or CIAOParameters.paper_defaults()
        self.params.validate()
        self.detector = InterferenceDetector(self.params)
        self.memory_arch = CIAOOnChipMemory(self.detector)
        self._last_wid: Optional[int] = None
        self._next_high_check = self.params.high_epoch_instructions
        self._next_low_check = self.params.low_epoch_instructions
        self.name = mode.value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, sm) -> None:
        """Bind to the SM and reset detector state."""
        super().attach(sm)
        self.detector.reset()
        self._next_high_check = self.params.high_epoch_instructions
        self._next_low_check = self.params.low_epoch_instructions
        self._last_wid = None

    @property
    def uses_shared_cache(self) -> bool:
        """True when this variant redirects requests to shared memory."""
        return self.mode in (CIAOMode.PARTITION_ONLY, CIAOMode.COMBINED)

    # ------------------------------------------------------------------
    # Feedback from the memory system
    # ------------------------------------------------------------------
    def notify_global_access(
        self,
        warp: Warp,
        hit: bool,
        vta_hit: Optional[VTAHit],
        destination: str,
        now: int,
    ) -> None:
        """Feed VTA hits (lost locality + attributed aggressor) to the detector."""
        if vta_hit is not None:
            self.detector.record_vta_hit(vta_hit.wid, vta_hit.evictor_wid)

    # ------------------------------------------------------------------
    # Epoch-driven decisions
    # ------------------------------------------------------------------
    def vector_notify_due(self) -> int:
        """Below the next epoch boundary, ``notify_issue`` only tracks the pointer."""
        if self._next_low_check < self._next_high_check:
            return self._next_low_check
        return self._next_high_check

    def notify_issue(self, warp: Warp, instruction: Instruction, now: int) -> None:
        """Advance the greedy pointer and run epoch checks on boundaries."""
        self._last_wid = warp.wid
        if self.sm is None:
            return
        total = self.sm.stats.instructions_issued
        if total >= self._next_low_check:
            self._low_epoch_check()
            while self._next_low_check <= total:
                self._next_low_check += self.params.low_epoch_instructions
        if total >= self._next_high_check:
            self._high_epoch_check()
            self.detector.advance_window(total)
            while self._next_high_check <= total:
                self._next_high_check += self.params.high_epoch_instructions

    # -- helpers ------------------------------------------------------------
    def _resident_warps(self) -> list[Warp]:
        return [w for w in self.sm.warps if not w.finished]

    def _warp_by_wid(self, wid: int) -> Optional[Warp]:
        for warp in self.sm.warps:
            if warp.wid == wid and not warp.finished:
                return warp
        return None

    def _counts(self) -> tuple[int, int]:
        total = max(1, self.sm.stats.instructions_issued)
        active = max(1, len(self._resident_warps()))
        return total, active

    def _trigger_still_relevant(self, trigger_wid: int) -> bool:
        """Algorithm 1 lines 7/15: the trigger warp still runs and still hurts."""
        if trigger_wid < 0:
            return False
        trigger_warp = self._warp_by_wid(trigger_wid)
        if trigger_warp is None:
            return False
        total, active = self._counts()
        irs = self.detector.irs(trigger_wid, total, active)
        return irs > self.params.low_cutoff

    # -- low-cutoff epoch: release stalled / isolated warps ---------------------
    def _low_epoch_check(self) -> None:
        for warp in self._resident_warps():
            pair = self.detector.pair_entry(warp.wid)
            if not warp.active and pair.stall_trigger >= 0:
                # Warp was stalled by CIAO (Algorithm 1 lines 4-11).
                if not self._trigger_still_relevant(pair.stall_trigger):
                    warp.active = True
                    pair.stall_trigger = -1
                    self.sm.stats.reactivate_events += 1
            elif warp.isolated and pair.redirect_trigger >= 0:
                # Warp was redirected to shared memory (lines 12-19).
                if not self._trigger_still_relevant(pair.redirect_trigger):
                    self.memory_arch.restore(warp, self.sm)

    # -- high-cutoff epoch: isolate / stall interferers ---------------------------
    def _high_epoch_check(self) -> None:
        total, active = self._counts()
        for warp in self._resident_warps():
            if not warp.active:
                continue  # Algorithm 1 line 20 considers active warps only.
            irs = self.detector.irs(warp.wid, total, active)
            if irs <= self.params.high_cutoff:
                continue
            interferer_wid = self.detector.most_interfering(warp.wid)
            if interferer_wid is None or interferer_wid == warp.wid:
                continue
            interferer = self._warp_by_wid(interferer_wid)
            if interferer is None or interferer.finished:
                continue
            self._act_on_interferer(interferer, triggered_by=warp.wid)

    def _act_on_interferer(self, interferer: Warp, *, triggered_by: int) -> None:
        """Apply the mode-specific action of Algorithm 1 lines 23-29."""
        pair = self.detector.pair_entry(interferer.wid)
        can_partition = self.uses_shared_cache and self.memory_arch.available(self.sm)
        can_throttle = self.mode in (CIAOMode.THROTTLE_ONLY, CIAOMode.COMBINED)
        if self.mode is CIAOMode.COMBINED:
            if interferer.isolated:
                # Already isolated and still interfering (now at the shared
                # memory): begin to stall it (line 24-26).
                if can_throttle and interferer.active:
                    interferer.active = False
                    pair.stall_trigger = triggered_by
                    self.sm.stats.throttle_events += 1
            elif can_partition:
                self.memory_arch.isolate(interferer, triggered_by, self.sm)
            elif can_throttle and interferer.active:
                # No unused shared memory at all: fall back to throttling.
                interferer.active = False
                pair.stall_trigger = triggered_by
                self.sm.stats.throttle_events += 1
            return
        if self.mode is CIAOMode.PARTITION_ONLY:
            if can_partition and not interferer.isolated:
                self.memory_arch.isolate(interferer, triggered_by, self.sm)
            return
        # THROTTLE_ONLY
        if interferer.active:
            interferer.active = False
            pair.stall_trigger = triggered_by
            self.sm.stats.throttle_events += 1

    # ------------------------------------------------------------------
    # Ordering / bookkeeping
    # ------------------------------------------------------------------
    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """GTO among the warps CIAO currently allows to run."""
        if not issuable:
            return None
        return self.greedy_then_oldest(issuable, self._last_wid)

    def on_warp_retired(self, warp: Warp, now: int) -> None:
        """Clean up detector state for the retired warp's slot."""
        if self._last_wid == warp.wid:
            self._last_wid = None
        self.memory_arch.forget_warp(warp)
        self.detector.forget_warp(warp.wid)
        # A retired warp may have been the trigger keeping others stalled.
        if self.sm is not None:
            self._low_epoch_check()

    def on_no_progress(self, now: int) -> bool:
        """Release the most recently stalled warp when nothing can run."""
        if self.sm is None:
            return False
        for warp in self._resident_warps():
            pair = self.detector.pair_entry(warp.wid)
            if not warp.active and pair.stall_trigger >= 0 and warp.pending_loads == 0 and not warp.at_barrier:
                warp.active = True
                pair.stall_trigger = -1
                self.sm.stats.reactivate_events += 1
                return True
        return False

    # ------------------------------------------------------------------
    def isolated_warp_count(self) -> int:
        """Number of currently isolated warps (for figures / tests)."""
        return len(self.memory_arch.isolated_wids())

    def stalled_warp_count(self) -> int:
        """Number of warps currently stalled by CIAO."""
        if self.sm is None:
            return 0
        return sum(
            1
            for w in self._resident_warps()
            if not w.active and self.detector.pair_entry(w.wid).stall_trigger >= 0
        )
