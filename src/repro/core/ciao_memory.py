"""CIAO on-chip memory architecture policy.

The *mechanism* of the CIAO on-chip memory architecture -- the shared-memory
cache layout, the address translation unit, the MSHR extension and the
datapath multiplexer -- lives in :mod:`repro.mem.shared_cache`,
:mod:`repro.mem.mshr` and the SM's load/store path.  This module implements
the *policy* side (Section III-B): deciding which warps are isolated
(their global requests redirected to unused shared memory), recording who
triggered each isolation in the pair list, and undoing the redirection when
the triggering interference disappears.

It is used by :class:`repro.core.ciao_scheduler.CIAOScheduler`, and can also
be driven directly (see ``examples/isolation_playground.py``) to study the
redirection mechanism in isolation from the throttling policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.interference import InterferenceDetector
from repro.gpu.warp import Warp


@dataclass
class IsolationStats:
    """Counts of isolation decisions."""

    isolations: int = 0
    restorations: int = 0


class CIAOOnChipMemory:
    """Tracks and manipulates per-warp isolation (the I bit)."""

    def __init__(self, detector: InterferenceDetector) -> None:
        self.detector = detector
        self.stats = IsolationStats()
        self._isolated_wids: set[int] = set()

    # ------------------------------------------------------------------
    def available(self, sm) -> bool:
        """True when the SM actually has a usable shared-memory cache."""
        return sm is not None and sm.shared_cache is not None and sm.shared_cache.num_lines > 0

    def is_isolated(self, wid: int) -> bool:
        """True when warp ``wid`` currently has its requests redirected."""
        return wid in self._isolated_wids

    def isolated_wids(self) -> frozenset[int]:
        """The set of isolated warp ids."""
        return frozenset(self._isolated_wids)

    # ------------------------------------------------------------------
    def isolate(self, warp: Warp, triggered_by_wid: int, sm=None) -> bool:
        """Redirect ``warp``'s global requests to the shared-memory cache.

        ``triggered_by_wid`` is the interfered warp whose high IRS caused the
        decision; it is recorded in the pair list (first field) so the
        redirection can later be undone when that warp's IRS drops below the
        low cutoff.  Returns True when the isolation was applied.
        """
        if warp.finished or warp.isolated:
            return False
        if sm is not None and not self.available(sm):
            return False
        warp.isolated = True
        self._isolated_wids.add(warp.wid)
        entry = self.detector.pair_entry(warp.wid)
        entry.redirect_trigger = triggered_by_wid
        self.stats.isolations += 1
        if sm is not None:
            sm.stats.throttle_events += 0  # isolation does not reduce TLP
        return True

    def restore(self, warp: Warp, sm=None) -> bool:
        """Send ``warp``'s requests back to the L1D (clears the I bit)."""
        if not warp.isolated:
            return False
        warp.isolated = False
        self._isolated_wids.discard(warp.wid)
        entry = self.detector.pair_entry(warp.wid)
        entry.redirect_trigger = -1
        self.stats.restorations += 1
        return True

    def forget_warp(self, warp: Warp) -> None:
        """Clean up when a warp retires."""
        self._isolated_wids.discard(warp.wid)

    # ------------------------------------------------------------------
    def redirect_trigger(self, wid: int) -> Optional[int]:
        """The interfered warp that caused ``wid``'s redirection (or None)."""
        entry = self.detector.pair_list.get(wid)
        if entry is None or entry.redirect_trigger < 0:
            return None
        return entry.redirect_trigger
