"""The paper's contribution: CIAO detection, memory architecture, scheduling.

* :mod:`repro.core.config` -- the CIAO thresholds and epoch lengths
  (``high-cutoff`` = 0.01, ``low-cutoff`` = 0.005, 5000 / 100 instruction
  epochs, Section IV-A).
* :mod:`repro.core.interference` -- the cache interference detector: per-warp
  VTA-hit counters, the Individual Re-reference Score (IRS), the
  *interference list* (most recently and frequently interfering warp per
  warp, guarded by a 2-bit saturating counter) and the *pair list*
  (which interfered warp triggered each redirection / stall).
* :mod:`repro.core.ciao_memory` -- the on-chip memory architecture policy:
  which warps are isolated (their global requests redirected to the
  shared-memory cache) and the bookkeeping around it.
* :mod:`repro.core.ciao_scheduler` -- Algorithm 1: the CIAO warp scheduler in
  its three variants CIAO-P (partition/redirect only), CIAO-T (selective
  throttling only) and CIAO-C (combined).
"""

from repro.core.config import CIAOParameters
from repro.core.interference import (
    InterferenceDetector,
    InterferenceListEntry,
    PairListEntry,
)
from repro.core.ciao_memory import CIAOOnChipMemory
from repro.core.ciao_scheduler import CIAOMode, CIAOScheduler

__all__ = [
    "CIAOParameters",
    "InterferenceDetector",
    "InterferenceListEntry",
    "PairListEntry",
    "CIAOOnChipMemory",
    "CIAOMode",
    "CIAOScheduler",
]
