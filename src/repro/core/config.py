"""CIAO tuning parameters.

Section IV-A of the paper sweeps and then fixes:

* ``high-cutoff``  = 0.01  -- IRS above this marks a warp as severely
  interfered, triggering isolation or throttling of its top interferer.
* ``low-cutoff``   = 0.005 -- IRS below this marks the interference as gone,
  triggering reactivation / un-redirection.
* ``high-cutoff epoch`` = 5000 executed instructions between checks of the
  high threshold.
* ``low-cutoff epoch``  = 100 executed instructions between checks of the
  low threshold (shorter so stalled warps are reactivated quickly, keeping
  TLP high).

Figure 11 sweeps the epoch (1K..50K) and the high threshold (0.5%..4%, with
low fixed at half of high); :class:`CIAOParameters` exposes exactly those
knobs so the sensitivity benches can reproduce the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CIAOParameters:
    """Thresholds and epoch lengths of the CIAO mechanisms."""

    high_cutoff: float = 0.01
    low_cutoff: float = 0.005
    high_epoch_instructions: int = 5000
    low_epoch_instructions: int = 100
    #: Size of the saturating counter guarding interference-list replacement.
    saturating_counter_bits: int = 2

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        if not 0.0 < self.high_cutoff <= 1.0:
            raise ValueError("high_cutoff must be in (0, 1]")
        if not 0.0 < self.low_cutoff <= self.high_cutoff:
            raise ValueError("low_cutoff must be in (0, high_cutoff]")
        if self.high_epoch_instructions <= 0 or self.low_epoch_instructions <= 0:
            raise ValueError("epoch lengths must be positive")
        if self.low_epoch_instructions > self.high_epoch_instructions:
            raise ValueError("the low-cutoff epoch should not exceed the high-cutoff epoch")
        if self.saturating_counter_bits <= 0:
            raise ValueError("saturating counter needs at least one bit")

    @property
    def saturating_counter_max(self) -> int:
        """Maximum value of the 2-bit (by default) saturating counter."""
        return (1 << self.saturating_counter_bits) - 1

    # -- named variants used by the sensitivity study (Fig. 11) -----------------
    def with_high_cutoff(self, high_cutoff: float) -> "CIAOParameters":
        """Fig. 11b convention: low cutoff is fixed at half the high cutoff."""
        return replace(self, high_cutoff=high_cutoff, low_cutoff=high_cutoff / 2)

    def with_high_epoch(self, instructions: int) -> "CIAOParameters":
        """Fig. 11a: change the high-cutoff epoch length."""
        return replace(self, high_epoch_instructions=instructions)

    @classmethod
    def paper_defaults(cls) -> "CIAOParameters":
        """The values the paper settles on (Section IV-A)."""
        return cls()
