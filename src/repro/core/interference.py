"""The CIAO cache-interference detector.

This module implements the micro-architectural state of Figure 6:

* per-warp **VTA-hit counters** (``VTACount0-k``) and the per-SM total
  instruction counter, from which the *Individual Re-reference Score*
  (Eq. 1) is computed::

        IRS_i = F_vta_hits(i) / (N_executed_inst / N_active_warps)

  i.e. the intensity of lost locality a warp has been suffering, normalised
  by how much work one warp's share of the machine has done;

* the **interference list**: for every warp, the WID of the warp that has
  most recently *and* most frequently interfered with it, protected by a
  2-bit saturating counter so a sporadic interferer cannot displace a
  persistent one (Section III-A);

* the **pair list**: for every warp, which interfered warp triggered CIAO to
  (field 0) redirect the warp's requests to shared memory or (field 1) stall
  it -- consulted later to decide when to undo those actions
  (Section IV-A).

The detector is fed by the SM through the scheduler's
``notify_global_access`` hook (every VTA hit carries the victim and the
aggressor WID) and queried by :class:`repro.core.ciao_scheduler.CIAOScheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import CIAOParameters


@dataclass
class InterferenceListEntry:
    """Most recently/frequently interfering warp for one interfered warp."""

    interfering_wid: int = -1
    counter: int = 0


@dataclass
class PairListEntry:
    """Which interfered warp triggered actions against this (interfering) warp.

    ``redirect_trigger`` corresponds to the first field in the paper (set
    when the warp's requests were redirected to shared memory);
    ``stall_trigger`` to the second field (set when the warp was stalled).
    ``-1`` means cleared.
    """

    redirect_trigger: int = -1
    stall_trigger: int = -1


@dataclass
class DetectorStats:
    """Counters describing detector activity."""

    vta_hit_events: int = 0
    interference_list_updates: int = 0
    interference_list_replacements: int = 0


class InterferenceDetector:
    """Tracks per-warp interference state for one SM."""

    def __init__(self, params: Optional[CIAOParameters] = None) -> None:
        self.params = params or CIAOParameters()
        self.params.validate()
        #: Cumulative VTA hits since the kernel started (the 32-bit hardware
        #: counters of Section V-F).
        self.vta_hit_counts: dict[int, int] = {}
        #: VTA hits within the current / previous high-cutoff epoch window.
        #: The IRS compares *recent* interference against the cutoffs so that
        #: warps are reactivated "as soon as these warps start not to notably
        #: interfere with other warps at runtime" (Section IV-A).
        self._window_hits: dict[int, int] = {}
        self._prev_window_hits: dict[int, int] = {}
        self._window_start_instructions = 0
        self._prev_window_instructions = 0
        self.interference_list: dict[int, InterferenceListEntry] = {}
        self.pair_list: dict[int, PairListEntry] = {}
        self.stats = DetectorStats()

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def record_vta_hit(self, interfered_wid: int, interfering_wid: int) -> None:
        """Process one VTA hit: count it and update the interference list.

        The interference-list update follows the 2-bit saturating counter
        protocol of Section III-A / Figure 4c:

        * same interferer as currently recorded -> increment (saturating);
        * different interferer -> decrement; only when the counter reaches
          zero is the recorded interferer replaced by the new one (and the
          counter reset), so the most *frequent* interferer survives bursts
          from others.
        """
        self.stats.vta_hit_events += 1
        self.vta_hit_counts[interfered_wid] = self.vta_hit_counts.get(interfered_wid, 0) + 1
        self._window_hits[interfered_wid] = self._window_hits.get(interfered_wid, 0) + 1

        entry = self.interference_list.setdefault(interfered_wid, InterferenceListEntry())
        self.stats.interference_list_updates += 1
        if entry.interfering_wid == -1:
            entry.interfering_wid = interfering_wid
            entry.counter = 0
            return
        if entry.interfering_wid == interfering_wid:
            entry.counter = min(self.params.saturating_counter_max, entry.counter + 1)
            return
        if entry.counter > 0:
            entry.counter -= 1
            return
        # Counter exhausted: adopt the new most-recent interferer.
        entry.interfering_wid = interfering_wid
        entry.counter = 0
        self.stats.interference_list_replacements += 1

    # ------------------------------------------------------------------
    # Epoch windows
    # ------------------------------------------------------------------
    def advance_window(self, total_instructions: int) -> None:
        """Close the current IRS window (called at each high-cutoff epoch).

        The previous window is retained so that IRS evaluations shortly after
        a window boundary still have a meaningful sample to look at.
        """
        self._prev_window_hits = self._window_hits
        self._prev_window_instructions = max(
            1, total_instructions - self._window_start_instructions
        )
        self._window_hits = {}
        self._window_start_instructions = total_instructions

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def vta_hits(self, wid: int) -> int:
        """Cumulative VTA hits suffered by warp ``wid`` (since kernel start)."""
        return self.vta_hit_counts.get(wid, 0)

    def recent_vta_hits(self, wid: int) -> int:
        """VTA hits of warp ``wid`` in the current + previous epoch window."""
        return self._window_hits.get(wid, 0) + self._prev_window_hits.get(wid, 0)

    def irs(self, wid: int, total_instructions: int, active_warps: int) -> float:
        """Individual Re-reference Score of warp ``wid`` (Eq. 1).

        The score is evaluated over the recent epoch window(s) rather than
        the whole execution so that both detection and reactivation track
        the *latest* interference behaviour, as Section IV-A requires.
        """
        if total_instructions <= 0 or active_warps <= 0:
            return 0.0
        window_instructions = (
            total_instructions - self._window_start_instructions
        ) + self._prev_window_instructions
        if window_instructions <= 0:
            window_instructions = total_instructions
        per_warp_instructions = window_instructions / active_warps
        if per_warp_instructions <= 0:
            return 0.0
        return self.recent_vta_hits(wid) / per_warp_instructions

    def cumulative_irs(self, wid: int, total_instructions: int, active_warps: int) -> float:
        """IRS evaluated over the whole execution (for reporting/analysis)."""
        if total_instructions <= 0 or active_warps <= 0:
            return 0.0
        per_warp_instructions = total_instructions / active_warps
        return self.vta_hits(wid) / per_warp_instructions if per_warp_instructions else 0.0

    def most_interfering(self, wid: int) -> Optional[int]:
        """WID of the warp currently blamed for interfering with ``wid``."""
        entry = self.interference_list.get(wid)
        if entry is None or entry.interfering_wid == -1:
            return None
        return entry.interfering_wid

    def pair_entry(self, wid: int) -> PairListEntry:
        """Pair-list entry for (interfering) warp ``wid``, created on demand."""
        return self.pair_list.setdefault(wid, PairListEntry())

    # ------------------------------------------------------------------
    # Threshold helpers
    # ------------------------------------------------------------------
    def exceeds_high_cutoff(self, wid: int, total_instructions: int, active_warps: int) -> bool:
        """True when warp ``wid`` is severely interfered (IRS > high-cutoff)."""
        return self.irs(wid, total_instructions, active_warps) > self.params.high_cutoff

    def below_low_cutoff(self, wid: int, total_instructions: int, active_warps: int) -> bool:
        """True when warp ``wid``'s interference has subsided (IRS <= low-cutoff)."""
        return self.irs(wid, total_instructions, active_warps) <= self.params.low_cutoff

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear all detector state (kernel boundary)."""
        self.vta_hit_counts.clear()
        self._window_hits.clear()
        self._prev_window_hits.clear()
        self._window_start_instructions = 0
        self._prev_window_instructions = 0
        self.interference_list.clear()
        self.pair_list.clear()

    def forget_warp(self, wid: int) -> None:
        """Drop state belonging to a retired warp."""
        self.vta_hit_counts.pop(wid, None)
        self._window_hits.pop(wid, None)
        self._prev_window_hits.pop(wid, None)
        self.interference_list.pop(wid, None)
        self.pair_list.pop(wid, None)

    # ------------------------------------------------------------------
    def storage_bits(self, num_warps: int = 64, wid_bits: int = 6) -> dict[str, int]:
        """Model the SRAM cost of the detector structures (Section V-F).

        Returns bits for the interference list (6-bit WID + 2-bit counter per
        entry), the pair list (two 6-bit WIDs per entry) and the per-warp
        32-bit VTA-hit counters.
        """
        interference_bits = num_warps * (wid_bits + self.params.saturating_counter_bits)
        pair_bits = num_warps * (2 * wid_bits)
        counter_bits = num_warps * 32
        return {
            "interference_list_bits": interference_bits,
            "pair_list_bits": pair_bits,
            "vta_hit_counter_bits": counter_bits,
        }
