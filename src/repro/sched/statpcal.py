"""statPCAL: priority-based cache allocation with L1D bypassing.

statPCAL (Li et al., HPCA 2015 -- "Priority-based cache allocation in
throughput processors") is the bypassing baseline of the paper's evaluation
(Section V-A).  The behaviour the paper relies on:

* a set of *token-holding* warps (sized like Best-SWL's profiled limit) use
  the L1D normally, protecting their locality;
* the remaining warps are not simply throttled: when the L2/DRAM bandwidth
  is under-utilised they keep executing but their memory requests *bypass*
  the L1D and go straight to the lower levels, recovering TLP;
* when the downstream bandwidth is saturated, the non-token warps are
  throttled, since bypassing would only add queueing delay.

This gives statPCAL higher throughput than Best-SWL (up to 37% in the
paper), while still losing to CIAO on LWS/SWS workloads because bypassed
requests pay the long DRAM latency instead of hitting in on-chip storage.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.sched.base import WarpScheduler


class StatPCALScheduler(WarpScheduler):
    """Token-based L1D allocation with bandwidth-gated bypassing."""

    name = "statpcal"

    def __init__(
        self,
        token_count: int = 8,
        bandwidth_threshold: float = 0.75,
        update_interval: int = 64,
    ) -> None:
        super().__init__()
        if token_count <= 0:
            raise ValueError("token count must be positive")
        if not 0.0 < bandwidth_threshold <= 1.0:
            raise ValueError("bandwidth threshold must be in (0, 1]")
        self.token_count = token_count
        self.bandwidth_threshold = bandwidth_threshold
        self.update_interval = update_interval
        self._token_wids: set[int] = set()
        self._bypass_allowed = True
        self._last_wid: Optional[int] = None
        self._next_update = 0

    # ------------------------------------------------------------------
    def attach(self, sm) -> None:
        """Grant tokens to the oldest warps."""
        super().attach(sm)
        self._assign_tokens()
        self._next_update = 0

    def _assign_tokens(self) -> None:
        if self.sm is None:
            return
        resident = [w for w in self.sm.warps if not w.finished]
        resident.sort(key=lambda w: (w.assigned_at, w.wid))
        self._token_wids = {w.wid for w in resident[: self.token_count]}

    def holds_token(self, wid: int) -> bool:
        """True when warp ``wid`` currently holds an L1D allocation token."""
        return wid in self._token_wids

    # ------------------------------------------------------------------
    # Note: select() prefers token holders over the last-issued warp, so it
    # is *not* greedy-sticky and the vector engine runs statPCAL through the
    # generic cycle-by-cycle path (no capability flags are set).

    def on_cycle_due(self) -> int:
        """``on_cycle`` is a no-op before the next periodic update point."""
        return self._next_update

    def on_cycle(self, now: int) -> None:
        """Periodically refresh the bandwidth signal and warp activation."""
        if now < self._next_update:
            return
        self._next_update = now + self.update_interval
        utilization = self.sm.memory.dram_utilization(max(1, now)) if self.sm else 0.0
        self._bypass_allowed = utilization < self.bandwidth_threshold
        self._apply_activation()

    def _apply_activation(self) -> None:
        """Token warps always run; non-token warps run only while bypassing."""
        if self.sm is None:
            return
        for warp in self.sm.warps:
            if warp.finished:
                continue
            allowed = warp.wid in self._token_wids or self._bypass_allowed
            if warp.active != allowed:
                warp.active = allowed
                if allowed:
                    self.sm.stats.reactivate_events += 1
                else:
                    self.sm.stats.throttle_events += 1

    # ------------------------------------------------------------------
    def should_bypass_l1(self, warp: Warp, now: int) -> bool:
        """Non-token warps bypass the L1D while bandwidth headroom exists."""
        return warp.wid not in self._token_wids and self._bypass_allowed

    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """GTO order, preferring token holders when both classes are ready."""
        if not issuable:
            return None
        token_ready = [w for w in issuable if w.wid in self._token_wids]
        pool = token_ready if token_ready else list(issuable)
        return self.greedy_then_oldest(pool, self._last_wid)

    def notify_issue(self, warp: Warp, instruction: Instruction, now: int) -> None:
        """Track the greedy warp."""
        self._last_wid = warp.wid

    def on_warp_retired(self, warp: Warp, now: int) -> None:
        """Hand the freed token to the next warp."""
        if self._last_wid == warp.wid:
            self._last_wid = None
        if warp.wid in self._token_wids:
            self._token_wids.discard(warp.wid)
            resident = [
                w
                for w in self.sm.warps
                if not w.finished and w.wid not in self._token_wids
            ]
            resident.sort(key=lambda w: (w.assigned_at, w.wid))
            if resident:
                self._token_wids.add(resident[0].wid)
        self._apply_activation()

    def on_no_progress(self, now: int) -> bool:
        """Re-enable bypassing so non-token warps cannot be starved forever."""
        if not self._bypass_allowed:
            self._bypass_allowed = True
            self._apply_activation()
            return True
        return False
