"""Base class / protocol for warp schedulers.

The SM (:class:`repro.gpu.sm.StreamingMultiprocessor`) drives its scheduler
through the hooks defined here.  All of them except :meth:`select` have
sensible no-op defaults, so simple policies only implement warp ordering
while the adaptive policies (CCWS, statPCAL, CIAO) additionally react to
memory-system feedback.

Hook call points
----------------

``attach(sm)``
    Once, after the kernel is launched and warps exist.
``on_cycle(now)``
    At the start of every issue cycle (cheap bookkeeping only).
``select(issuable, now)``
    Pick the warp to issue among the currently issuable ones.
``notify_issue(warp, instruction, now)``
    After an instruction issued successfully.
``notify_global_access(warp, hit, vta_hit, destination, now)``
    For every global-memory transaction: whether it hit, whether the victim
    tag array detected lost locality (and to whom it is attributed), and
    which structure served it ("l1d", "shared", "bypass").
``should_bypass_l1(warp, now)``
    Queried per memory instruction; return True to send the warp's requests
    straight to L2 (statPCAL).
``on_warp_retired(warp, now)`` / ``on_no_progress(now)``
    Warp completion, and the livelock guard (return True when the scheduler
    changed something that will allow progress).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.mem.victim_tag_array import VTAHit


class WarpScheduler:
    """Reference scheduler interface with no-op default hooks."""

    #: Human-readable policy name (overridden by subclasses).
    name = "base"

    def __init__(self) -> None:
        self.sm = None  # type: ignore[assignment]

    # -- lifecycle -----------------------------------------------------------
    def attach(self, sm) -> None:
        """Bind the scheduler to its SM after kernel launch."""
        self.sm = sm

    def on_cycle(self, now: int) -> None:
        """Per-cycle bookkeeping hook."""

    # -- the one mandatory method ---------------------------------------------
    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """Choose the warp to issue this cycle; ``None`` issues nothing."""
        raise NotImplementedError

    # -- feedback hooks ---------------------------------------------------------
    def notify_issue(self, warp: Warp, instruction: Instruction, now: int) -> None:
        """Called after an instruction issued."""

    def notify_global_access(
        self,
        warp: Warp,
        hit: bool,
        vta_hit: Optional[VTAHit],
        destination: str,
        now: int,
    ) -> None:
        """Called for every global-memory transaction."""

    def should_bypass_l1(self, warp: Warp, now: int) -> bool:
        """Return True to bypass the L1D for this warp's next access."""
        return False

    def on_warp_retired(self, warp: Warp, now: int) -> None:
        """Called when a warp finishes."""

    def on_no_progress(self, now: int) -> bool:
        """Livelock guard: un-throttle something; return True if acted."""
        return False

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def greedy_then_oldest(issuable: Sequence[Warp], last_wid: Optional[int]) -> Warp:
        """The GTO ordering rule shared by several policies.

        Keep issuing the warp issued last (greedy); when it cannot issue,
        fall back to the oldest warp (smallest assignment time, then lowest
        warp id).
        """
        if last_wid is not None:
            for warp in issuable:
                if warp.wid == last_wid:
                    return warp
        return min(issuable, key=lambda w: (w.assigned_at, w.wid))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
