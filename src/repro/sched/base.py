"""Base class / protocol for warp schedulers.

The SM (:class:`repro.gpu.sm.StreamingMultiprocessor`) drives its scheduler
through the hooks defined here.  All of them except :meth:`select` have
sensible no-op defaults, so simple policies only implement warp ordering
while the adaptive policies (CCWS, statPCAL, CIAO) additionally react to
memory-system feedback.

Hook call points
----------------

``attach(sm)``
    Once, after the kernel is launched and warps exist.
``on_cycle(now)``
    At the start of every issue cycle (cheap bookkeeping only).
``select(issuable, now)``
    Pick the warp to issue among the currently issuable ones.
``notify_issue(warp, instruction, now)``
    After an instruction issued successfully.
``notify_global_access(warp, hit, vta_hit, destination, now)``
    For every global-memory transaction: whether it hit, whether the victim
    tag array detected lost locality (and to whom it is attributed), and
    which structure served it ("l1d", "shared", "bypass").
``should_bypass_l1(warp, now)``
    Queried per memory instruction; return True to send the warp's requests
    straight to L2 (statPCAL).
``on_warp_retired(warp, now)`` / ``on_no_progress(now)``
    Warp completion, and the livelock guard (return True when the scheduler
    changed something that will allow progress).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.mem.victim_tag_array import VTAHit

#: Names of the optional scheduler hooks the SM may invoke.  ``select`` is
#: mandatory and therefore not listed.
SCHEDULER_HOOK_NAMES = (
    "on_cycle",
    "notify_issue",
    "notify_global_access",
    "should_bypass_l1",
    "on_warp_retired",
    "on_no_progress",
)


@dataclass(slots=True)
class SchedulerHooks:
    """The resolved capability surface of one scheduler instance.

    The SM used to probe ``hasattr(self.scheduler, ...)`` on every cycle /
    issue / retire; this dataclass makes the capability interface explicit
    and lets the SM resolve each hook to a bound method exactly once (at
    ``attach`` time).  A hook is ``None`` when the scheduler does not
    implement it — or only inherits the no-op default from
    :class:`WarpScheduler`, which is behaviourally identical to not
    implementing it and lets the SM skip the call entirely.
    """

    on_cycle: Optional[Callable[[int], None]] = None
    notify_issue: Optional[Callable[[Warp, Instruction, int], None]] = None
    notify_global_access: Optional[
        Callable[[Warp, bool, Optional[VTAHit], str, int], None]
    ] = None
    should_bypass_l1: Optional[Callable[[Warp, int], bool]] = None
    on_warp_retired: Optional[Callable[[Warp, int], None]] = None
    on_no_progress: Optional[Callable[[int], bool]] = None


def resolve_hooks(scheduler) -> SchedulerHooks:
    """Resolve ``scheduler``'s optional hooks into bound-method slots.

    Works for :class:`WarpScheduler` subclasses and for duck-typed scheduler
    objects alike.  Base-class no-op defaults resolve to ``None`` so the hot
    loop never pays for a call that cannot do anything; any override —
    including one set as an instance attribute — is kept.
    """
    resolved = {}
    for name in SCHEDULER_HOOK_NAMES:
        hook = getattr(scheduler, name, None)
        if hook is not None:
            default = getattr(WarpScheduler, name, None)
            if default is not None and getattr(hook, "__func__", None) is default:
                hook = None
        resolved[name] = hook
    return SchedulerHooks(**resolved)


class WarpScheduler:
    """Reference scheduler interface with no-op default hooks."""

    #: Human-readable policy name (overridden by subclasses).
    name = "base"

    # -- vector-engine capability contract (see repro.gpu.vector) -----------
    #: Declares that ``select`` is *greedy-sticky*: whenever the last-issued
    #: warp is in the issuable set, ``select`` returns it again, regardless
    #: of what else became issuable.  The vector backend uses this to issue
    #: uninterrupted single-warp instruction runs in one batched step; the
    #: batch is bit-identical to the cycle-by-cycle path only under this
    #: property, so a scheduler must not set it unless it truly holds.
    vector_sticky_select = False
    #: Declares that ``notify_issue`` does nothing but track the greedy
    #: pointer (``_last_wid``), so N consecutive issues of the same warp may
    #: be folded into a single call.  Schedulers whose ``notify_issue`` has
    #: instruction-count side effects (CIAO's epoch checks) leave this False
    #: and are notified per instruction inside a batch.
    vector_notify_greedy_only = False
    #: Strictly stronger than :attr:`vector_sticky_select`: ``select`` is
    #: side-effect free and *always* returns the last-issued warp when it is
    #: issuable — even after intervening cycles in which selection ran
    #: without an issue.  This lets the vector engine skip building the
    #: issuable list entirely while the greedy warp can issue.  Two-level
    #: scheduling must NOT set this: its ``select`` rotates the active fetch
    #: group (a mutation) whenever the group has no issuable warp — e.g. in
    #: a failed-issue cycle — after which the greedy warp is no longer
    #: preferred.
    vector_select_pure_greedy = False

    def vector_notify_due(self) -> Optional[int]:
        """First total-instruction count at which ``notify_issue`` may act.

        For schedulers whose ``notify_issue`` is a pure greedy-pointer
        update *except* at known instruction-count boundaries (CIAO's epoch
        checks), this returns the next such boundary: below it, a batched
        run may fold the notifications of consecutive same-warp issues into
        none at all (the pointer already names the warp) and must call
        ``notify_issue`` exactly at the boundary instruction.  ``None`` (the
        default) means "no such structure: call per instruction".
        """
        return None

    def on_cycle_due(self) -> Optional[int]:
        """First future cycle at which :meth:`on_cycle` may act (or ``None``).

        Schedulers whose ``on_cycle`` is periodic (CCWS, statPCAL: an early
        return unless ``now`` reached the next update point) expose that
        point here so the vector engine can skip the provably-no-op calls
        inside a batched run.  ``None`` (the default) means "unknown: call
        ``on_cycle`` every cycle", which disables batching across cycles for
        schedulers that define ``on_cycle`` without this hint.
        """
        return None

    def __init__(self) -> None:
        self.sm = None  # type: ignore[assignment]

    # -- lifecycle -----------------------------------------------------------
    def attach(self, sm) -> None:
        """Bind the scheduler to its SM after kernel launch."""
        self.sm = sm

    def on_cycle(self, now: int) -> None:
        """Per-cycle bookkeeping hook."""

    # -- the one mandatory method ---------------------------------------------
    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """Choose the warp to issue this cycle; ``None`` issues nothing."""
        raise NotImplementedError

    # -- feedback hooks ---------------------------------------------------------
    def notify_issue(self, warp: Warp, instruction: Instruction, now: int) -> None:
        """Called after an instruction issued."""

    def notify_global_access(
        self,
        warp: Warp,
        hit: bool,
        vta_hit: Optional[VTAHit],
        destination: str,
        now: int,
    ) -> None:
        """Called for every global-memory transaction."""

    def should_bypass_l1(self, warp: Warp, now: int) -> bool:
        """Return True to bypass the L1D for this warp's next access."""
        return False

    def on_warp_retired(self, warp: Warp, now: int) -> None:
        """Called when a warp finishes."""

    def on_no_progress(self, now: int) -> bool:
        """Livelock guard: un-throttle something; return True if acted."""
        return False

    # -- helpers ------------------------------------------------------------
    @staticmethod
    def greedy_then_oldest(issuable: Sequence[Warp], last_wid: Optional[int]) -> Warp:
        """The GTO ordering rule shared by several policies.

        Keep issuing the warp issued last (greedy); when it cannot issue,
        fall back to the oldest warp (smallest assignment time, then lowest
        warp id).
        """
        if last_wid is not None:
            for warp in issuable:
                if warp.wid == last_wid:
                    return warp
        # Manual first-minimum scan of (assigned_at, wid) — equivalent to
        # min() with a key tuple, without the per-warp lambda/tuple cost.
        best = issuable[0]
        best_age = best.assigned_at
        best_wid = best.wid
        for warp in issuable:
            age = warp.assigned_at
            if age < best_age or (age == best_age and warp.wid < best_wid):
                best = warp
                best_age = age
                best_wid = warp.wid
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
