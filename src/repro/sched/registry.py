"""Scheduler factory.

Maps the scheduler names used throughout the evaluation (and in Figure 8's
legend) onto constructor calls.  The CIAO schedulers are imported lazily to
keep the dependency direction ``core -> sched.base`` clean.

Recognised names (case-insensitive):

=============  ==========================================================
``gto``        Greedy-then-oldest (the normalisation baseline)
``lrr``        Loose round-robin
``two-level``  Two-level fetch-group scheduler
``best-swl``   Best static wavefront limiting (needs ``warp_limit``)
``ccws``       Cache-conscious wavefront scheduling
``statpcal``   Priority-based cache allocation / bypass
``ciao-p``     CIAO with request redirection only
``ciao-t``     CIAO with selective throttling only
``ciao-c``     CIAO with both (the full scheme)
=============  ==========================================================
"""

from __future__ import annotations

from typing import Callable

from repro.sched.base import WarpScheduler
from repro.sched.best_swl import BestSWLScheduler
from repro.sched.ccws import CCWSScheduler
from repro.sched.gto import GTOScheduler
from repro.sched.lrr import LooseRoundRobinScheduler
from repro.sched.statpcal import StatPCALScheduler
from repro.sched.two_level import TwoLevelScheduler

#: Names of every policy the registry can construct.
_BASELINES = ("gto", "lrr", "two-level", "best-swl", "ccws", "statpcal")
_CIAO = ("ciao-p", "ciao-t", "ciao-c")

#: Accepted spelling variants mapped onto the canonical hyphenated names.
_ALIASES = {
    "two_level": "two-level",
    "twolevel": "two-level",
    "best_swl": "best-swl",
    "bestswl": "best-swl",
    "ciao_p": "ciao-p",
    "ciao_t": "ciao-t",
    "ciao_c": "ciao-c",
}


def scheduler_names() -> tuple[str, ...]:
    """All scheduler names :func:`create_scheduler` accepts."""
    return _BASELINES + _CIAO


def canonical_scheduler_name(name: str) -> str:
    """Normalise spelling variants (``ciao_c`` -> ``ciao-c``).

    The result cache keys jobs by this canonical name so the same policy is
    never simulated twice just because two callers spelled it differently.
    Raises ``KeyError`` for unknown schedulers.
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in _BASELINES + _CIAO:
        raise KeyError(f"unknown scheduler {name!r}; expected one of {scheduler_names()}")
    return key


def uses_shared_cache(name: str) -> bool:
    """True for policies that need the CIAO shared-memory cache enabled."""
    return canonical_scheduler_name(name) in ("ciao-p", "ciao-c")


def create_scheduler(name: str, **kwargs) -> WarpScheduler:
    """Build a scheduler instance by name.

    Keyword arguments are forwarded to the scheduler constructor; common ones
    are ``warp_limit`` (Best-SWL), ``token_count`` (statPCAL) and the CIAO
    cutoff/epoch parameters (see
    :class:`repro.core.config.CIAOParameters`).
    """
    key = name.lower()
    if key == "gto":
        return GTOScheduler(**kwargs)
    if key == "lrr":
        return LooseRoundRobinScheduler(**kwargs)
    if key in ("two-level", "two_level", "twolevel"):
        return TwoLevelScheduler(**kwargs)
    if key in ("best-swl", "best_swl", "bestswl"):
        return BestSWLScheduler(**kwargs)
    if key == "ccws":
        return CCWSScheduler(**kwargs)
    if key == "statpcal":
        return StatPCALScheduler(**kwargs)
    if key in ("ciao-p", "ciao_p", "ciao-t", "ciao_t", "ciao-c", "ciao_c"):
        from repro.core.ciao_scheduler import CIAOScheduler, CIAOMode

        mode = {
            "ciao-p": CIAOMode.PARTITION_ONLY,
            "ciao_p": CIAOMode.PARTITION_ONLY,
            "ciao-t": CIAOMode.THROTTLE_ONLY,
            "ciao_t": CIAOMode.THROTTLE_ONLY,
            "ciao-c": CIAOMode.COMBINED,
            "ciao_c": CIAOMode.COMBINED,
        }[key]
        return CIAOScheduler(mode=mode, **kwargs)
    raise KeyError(f"unknown scheduler {name!r}; expected one of {scheduler_names()}")


def scheduler_factory(name: str, **kwargs) -> Callable[[], WarpScheduler]:
    """Return a zero-argument factory for :class:`repro.gpu.gpu.GPU`."""
    return lambda: create_scheduler(name, **kwargs)
