"""Scheduler registry and factory.

Maps the scheduler names used throughout the evaluation (and in Figure 8's
legend) onto constructor calls, backed by the generic
:class:`repro.registry.Registry` helper so out-of-tree policies can be added
without editing this module::

    from repro.sched.registry import register_scheduler

    register_scheduler("my-policy", MyScheduler, aliases=("my_policy",))

The CIAO schedulers are constructed through lazily-importing factories to
keep the dependency direction ``core -> sched.base`` clean.

Recognised built-in names (case-insensitive):

=============  ==========================================================
``gto``        Greedy-then-oldest (the normalisation baseline)
``lrr``        Loose round-robin
``two-level``  Two-level fetch-group scheduler
``best-swl``   Best static wavefront limiting (needs ``warp_limit``)
``ccws``       Cache-conscious wavefront scheduling
``statpcal``   Priority-based cache allocation / bypass
``ciao-p``     CIAO with request redirection only
``ciao-t``     CIAO with selective throttling only
``ciao-c``     CIAO with both (the full scheme)
=============  ==========================================================
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.registry import Registry
from repro.sched.base import WarpScheduler
from repro.sched.best_swl import BestSWLScheduler
from repro.sched.ccws import CCWSScheduler
from repro.sched.gto import GTOScheduler
from repro.sched.lrr import LooseRoundRobinScheduler
from repro.sched.statpcal import StatPCALScheduler
from repro.sched.two_level import TwoLevelScheduler

_REGISTRY: Registry = Registry("scheduler")


def register_scheduler(
    name: str,
    factory: Callable[..., WarpScheduler],
    *,
    aliases: Iterable[str] = (),
    shared_cache: bool = False,
    replace: bool = False,
) -> Callable[..., WarpScheduler]:
    """Register a scheduler constructor under ``name`` (and ``aliases``).

    ``shared_cache=True`` marks policies that need the CIAO shared-memory
    cache enabled on every SM they run on.
    """
    return _REGISTRY.register(
        name,
        factory,
        aliases=aliases,
        meta={"shared_cache": shared_cache},
        replace=replace,
    )


def unregister_scheduler(name: str) -> Callable[..., WarpScheduler]:
    """Remove a registered scheduler (by any alias); returns its factory."""
    return _REGISTRY.unregister(name)


def _ciao(mode_name: str) -> Callable[..., WarpScheduler]:
    """Factory for one CIAO mode, importing ``repro.core`` only when called."""

    def build(**kwargs) -> WarpScheduler:
        from repro.core.ciao_scheduler import CIAOMode, CIAOScheduler

        return CIAOScheduler(mode=CIAOMode[mode_name], **kwargs)

    return build


register_scheduler("gto", GTOScheduler)
register_scheduler("lrr", LooseRoundRobinScheduler)
register_scheduler("two-level", TwoLevelScheduler, aliases=("two_level", "twolevel"))
register_scheduler("best-swl", BestSWLScheduler, aliases=("best_swl", "bestswl"))
register_scheduler("ccws", CCWSScheduler)
register_scheduler("statpcal", StatPCALScheduler)
register_scheduler("ciao-p", _ciao("PARTITION_ONLY"), aliases=("ciao_p",), shared_cache=True)
register_scheduler("ciao-t", _ciao("THROTTLE_ONLY"), aliases=("ciao_t",))
register_scheduler("ciao-c", _ciao("COMBINED"), aliases=("ciao_c",), shared_cache=True)


def scheduler_names() -> tuple[str, ...]:
    """All scheduler names :func:`create_scheduler` accepts."""
    return _REGISTRY.names()


def canonical_scheduler_name(name: str) -> str:
    """Normalise spelling variants (``ciao_c`` -> ``ciao-c``).

    The result cache keys jobs by this canonical name so the same policy is
    never simulated twice just because two callers spelled it differently.
    Raises ``KeyError`` for unknown schedulers.
    """
    return _REGISTRY.canonical(name)


def uses_shared_cache(name: str) -> bool:
    """True for policies that need the CIAO shared-memory cache enabled."""
    return bool(_REGISTRY.meta(name).get("shared_cache"))


def create_scheduler(name: str, **kwargs) -> WarpScheduler:
    """Build a scheduler instance by name.

    Keyword arguments are forwarded to the scheduler constructor; common ones
    are ``warp_limit`` (Best-SWL), ``token_count`` (statPCAL) and the CIAO
    cutoff/epoch parameters (see
    :class:`repro.core.config.CIAOParameters`).
    """
    return _REGISTRY.get(name)(**kwargs)


def scheduler_factory(name: str, **kwargs) -> Callable[[], WarpScheduler]:
    """Return a zero-argument factory for :class:`repro.gpu.gpu.GPU`."""
    return lambda: create_scheduler(name, **kwargs)
