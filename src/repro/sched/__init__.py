"""Warp schedulers.

This subpackage implements the warp scheduling policies the paper evaluates
against CIAO (Section V-A):

* :class:`~repro.sched.lrr.LooseRoundRobinScheduler` -- loose round-robin,
  included as an additional baseline for tests and ablations.
* :class:`~repro.sched.gto.GTOScheduler` -- greedy-then-oldest, the base
  ordering policy every other scheduler builds on.
* :class:`~repro.sched.two_level.TwoLevelScheduler` -- Narasiman et al.'s
  two-level warp scheduler (discussed in the related-work section).
* :class:`~repro.sched.best_swl.BestSWLScheduler` -- best static wavefront
  limiting (profiled per-benchmark active-warp limit).
* :class:`~repro.sched.ccws.CCWSScheduler` -- cache-conscious wavefront
  scheduling, the locality-aware policy CIAO argues against.
* :class:`~repro.sched.statpcal.StatPCALScheduler` -- the priority-based
  cache-allocation / bypass scheme used as the bypassing baseline.

The CIAO schedulers themselves live in :mod:`repro.core.ciao_scheduler`; the
factory in :mod:`repro.sched.registry` knows about all of them.
"""

from repro.sched.base import WarpScheduler
from repro.sched.lrr import LooseRoundRobinScheduler
from repro.sched.gto import GTOScheduler
from repro.sched.two_level import TwoLevelScheduler
from repro.sched.best_swl import BestSWLScheduler
from repro.sched.ccws import CCWSScheduler
from repro.sched.statpcal import StatPCALScheduler
from repro.sched.registry import create_scheduler, scheduler_names

__all__ = [
    "WarpScheduler",
    "LooseRoundRobinScheduler",
    "GTOScheduler",
    "TwoLevelScheduler",
    "BestSWLScheduler",
    "CCWSScheduler",
    "StatPCALScheduler",
    "create_scheduler",
    "scheduler_names",
]
