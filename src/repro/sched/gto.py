"""Greedy-Then-Oldest (GTO) warp scheduler.

GTO keeps issuing from the same warp until it stalls, then falls back to the
oldest ready warp.  It is the baseline every result in Figure 8 is
normalised to, and it is also the underlying ordering policy of CCWS,
Best-SWL and the CIAO schedulers (Section V-A: "CCWS, Best-SWL, and
CIAO-P/T/C leverage GTO to decide the order of execution of warps").
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.sched.base import WarpScheduler


class GTOScheduler(WarpScheduler):
    """Greedy-then-oldest warp selection."""

    name = "gto"

    # Greedy-then-oldest always re-picks the last-issued warp while it can
    # issue, and notify_issue only moves the greedy pointer.
    vector_sticky_select = True
    vector_notify_greedy_only = True
    vector_select_pure_greedy = True

    def __init__(self) -> None:
        super().__init__()
        self._last_wid: Optional[int] = None

    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """Prefer the warp issued last; otherwise the oldest issuable warp."""
        if not issuable:
            return None
        return self.greedy_then_oldest(issuable, self._last_wid)

    def notify_issue(self, warp: Warp, instruction: Instruction, now: int) -> None:
        """Remember the greedy warp."""
        self._last_wid = warp.wid

    def on_warp_retired(self, warp: Warp, now: int) -> None:
        """Forget the greedy warp when it exits."""
        if self._last_wid == warp.wid:
            self._last_wid = None
