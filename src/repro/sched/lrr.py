"""Loose round-robin (LRR) warp scheduler.

The simplest policy: warps take turns in warp-id order, skipping warps that
cannot issue.  LRR tends to make all warps progress at the same rate, which
maximises the overlap of their working sets and therefore produces the worst
cache thrashing -- a useful lower bound in the ablation studies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.warp import Warp
from repro.sched.base import WarpScheduler


class LooseRoundRobinScheduler(WarpScheduler):
    """Issue warps in round-robin order among the issuable ones."""

    name = "lrr"

    def __init__(self) -> None:
        super().__init__()
        self._last_wid = -1

    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """Pick the next warp id after the previously issued one (wrapping)."""
        if not issuable:
            return None
        ordered = sorted(issuable, key=lambda w: w.wid)
        for warp in ordered:
            if warp.wid > self._last_wid:
                self._last_wid = warp.wid
                return warp
        warp = ordered[0]
        self._last_wid = warp.wid
        return warp
