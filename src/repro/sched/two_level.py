"""Two-level warp scheduler (Narasiman et al., MICRO 2011).

Warps are statically partitioned into fetch groups; only the *active* group
is eligible to issue.  When every warp of the active group is stalled
(typically on memory), the scheduler switches to the next group.  The effect
is that long-latency misses of one group are overlapped with the execution
of another, while the instantaneous cache footprint is only one group wide.

The paper discusses this scheduler in Section VI as an example of a
scheduling policy that alleviates memory traffic but is not
interference-aware; it is included here for ablation studies.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.sched.base import WarpScheduler


class TwoLevelScheduler(WarpScheduler):
    """Fetch-group based two-level scheduling."""

    name = "two-level"

    # While the last-issued warp can issue, its fetch group stays active and
    # greedy-then-oldest re-picks it, so select is sticky; notify_issue only
    # tracks the greedy pointer.
    vector_sticky_select = True
    vector_notify_greedy_only = True

    def __init__(self, group_size: int = 8) -> None:
        super().__init__()
        if group_size <= 0:
            raise ValueError("group size must be positive")
        self.group_size = group_size
        self._active_group = 0
        self._last_wid: Optional[int] = None

    def _group_of(self, warp: Warp) -> int:
        return warp.wid // self.group_size

    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """Issue from the active fetch group; rotate groups when it is empty."""
        if not issuable:
            return None
        groups = sorted({self._group_of(w) for w in issuable})
        if self._active_group not in groups:
            # Switch to the next group in round-robin order.
            later = [g for g in groups if g > self._active_group]
            self._active_group = later[0] if later else groups[0]
        candidates = [w for w in issuable if self._group_of(w) == self._active_group]
        return self.greedy_then_oldest(candidates, self._last_wid)

    def notify_issue(self, warp: Warp, instruction: Instruction, now: int) -> None:
        """Track the greedy warp within the active group."""
        self._last_wid = warp.wid

    def on_warp_retired(self, warp: Warp, now: int) -> None:
        """Forget the greedy warp when it exits."""
        if self._last_wid == warp.wid:
            self._last_wid = None
