"""Best Static Wavefront Limiting (Best-SWL).

Best-SWL (Rogers et al., MICRO 2012) throttles the number of concurrently
schedulable warps to a fixed, per-benchmark limit determined by offline
profiling -- the ``Nwrp`` column of Table II lists the best limit for every
benchmark.  Within the allowed warps it behaves like GTO.

Because the limit is fixed for the whole execution, Best-SWL cannot adapt to
phase changes: the paper's Figure 9 shows it stuck at 2 warps during ATAX's
compute-intensive second phase, which is exactly the weakness CIAO (and
CCWS) exploit.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.sched.base import WarpScheduler


class BestSWLScheduler(WarpScheduler):
    """GTO restricted to a fixed number of schedulable warps."""

    name = "best-swl"

    # GTO among the allowed warps: sticky greedy pointer, tracking-only
    # notify_issue (the static limit is applied in attach / on_warp_retired).
    vector_sticky_select = True
    vector_notify_greedy_only = True
    vector_select_pure_greedy = True

    def __init__(self, warp_limit: int = 48) -> None:
        super().__init__()
        if warp_limit <= 0:
            raise ValueError("warp limit must be positive")
        self.warp_limit = warp_limit
        self._last_wid: Optional[int] = None

    # ------------------------------------------------------------------
    def attach(self, sm) -> None:
        """Throttle everything beyond the first ``warp_limit`` warps."""
        super().attach(sm)
        self._apply_limit()

    def _apply_limit(self) -> None:
        """Allow the ``warp_limit`` oldest resident warps; stall the rest."""
        if self.sm is None:
            return
        resident = [w for w in self.sm.warps if not w.finished]
        resident.sort(key=lambda w: (w.assigned_at, w.wid))
        for index, warp in enumerate(resident):
            allowed = index < self.warp_limit
            if warp.active != allowed:
                warp.active = allowed
                if allowed:
                    self.sm.stats.reactivate_events += 1
                else:
                    self.sm.stats.throttle_events += 1

    # ------------------------------------------------------------------
    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """GTO among the non-throttled warps."""
        if not issuable:
            return None
        return self.greedy_then_oldest(issuable, self._last_wid)

    def notify_issue(self, warp: Warp, instruction: Instruction, now: int) -> None:
        """Track the greedy warp."""
        self._last_wid = warp.wid

    def on_warp_retired(self, warp: Warp, now: int) -> None:
        """A slot freed up: admit the next throttled warp."""
        if self._last_wid == warp.wid:
            self._last_wid = None
        self._apply_limit()

    def on_no_progress(self, now: int) -> bool:
        """Never the culprit: the limit always leaves at least one warp active."""
        self._apply_limit()
        return False
