"""Cache-Conscious Wavefront Scheduling (CCWS).

CCWS (Rogers et al., MICRO 2012) is the locality-aware scheduler CIAO argues
against.  Every warp carries a *lost-locality score* (LLS):

* a VTA hit for a warp (it missed on data it recently had in the L1D) bumps
  the warp's score by ``score_bump``;
* scores decay back towards a common ``base_score`` over time.

Scores are stacked: warps are sorted by descending score and only the warps
that fit under a cumulative cutoff of ``base_score x num_resident_warps``
may issue.  A warp with a very large score therefore *pushes* low-locality
warps below the cutoff, throttling them -- i.e. CCWS gives higher priority
to warps with higher potential of data locality and reduces TLP to protect
them, which is precisely the behaviour the paper's Figures 1b and 9 examine
(CCWS stalling more than 40 warps on Backprop).

Within the allowed set the ordering is GTO.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.mem.victim_tag_array import VTAHit
from repro.sched.base import WarpScheduler


class CCWSScheduler(WarpScheduler):
    """Lost-locality score based wavefront limiting."""

    name = "ccws"

    def __init__(
        self,
        base_score: int = 100,
        score_bump: int = 64,
        decay_per_update: int = 4,
        update_interval: int = 16,
    ) -> None:
        super().__init__()
        if base_score <= 0 or score_bump <= 0:
            raise ValueError("scores must be positive")
        self.base_score = base_score
        self.score_bump = score_bump
        self.decay_per_update = decay_per_update
        self.update_interval = update_interval
        self._scores: dict[int, float] = {}
        self._last_wid: Optional[int] = None
        self._next_update = 0

    # ------------------------------------------------------------------
    def attach(self, sm) -> None:
        """Initialise every warp's score to the base score."""
        super().attach(sm)
        self._scores = {w.wid: float(self.base_score) for w in sm.warps}
        self._next_update = 0

    def score(self, wid: int) -> float:
        """Current lost-locality score of warp ``wid``."""
        return self._scores.get(wid, float(self.base_score))

    # ------------------------------------------------------------------
    def notify_global_access(
        self,
        warp: Warp,
        hit: bool,
        vta_hit: Optional[VTAHit],
        destination: str,
        now: int,
    ) -> None:
        """Bump the victim warp's score when the VTA reports lost locality."""
        if vta_hit is None:
            return
        wid = vta_hit.wid
        self._scores[wid] = self._scores.get(wid, float(self.base_score)) + self.score_bump

    def on_cycle(self, now: int) -> None:
        """Periodically decay scores and recompute the allowed warp set."""
        if now < self._next_update:
            return
        self._next_update = now + self.update_interval
        self._decay()
        self._apply_cutoff()

    def _decay(self) -> None:
        for wid, score in self._scores.items():
            if score > self.base_score:
                self._scores[wid] = max(float(self.base_score), score - self.decay_per_update)

    def _apply_cutoff(self) -> None:
        """Stack scores and throttle the warps pushed below the cutoff."""
        if self.sm is None:
            return
        resident = [w for w in self.sm.warps if not w.finished]
        if not resident:
            return
        cutoff = self.base_score * len(resident)
        ordered = sorted(
            resident, key=lambda w: (-self.score(w.wid), w.assigned_at, w.wid)
        )
        cumulative = 0.0
        allowed_ids: set[int] = set()
        for warp in ordered:
            score = self.score(warp.wid)
            if cumulative + score <= cutoff or not allowed_ids:
                allowed_ids.add(warp.wid)
            cumulative += score
        for warp in resident:
            allowed = warp.wid in allowed_ids
            if warp.active != allowed:
                warp.active = allowed
                if allowed:
                    self.sm.stats.reactivate_events += 1
                else:
                    self.sm.stats.throttle_events += 1

    # ------------------------------------------------------------------
    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """GTO among warps that survived the score cutoff."""
        if not issuable:
            return None
        return self.greedy_then_oldest(issuable, self._last_wid)

    def notify_issue(self, warp: Warp, instruction: Instruction, now: int) -> None:
        """Track the greedy warp."""
        self._last_wid = warp.wid

    def on_warp_retired(self, warp: Warp, now: int) -> None:
        """Remove the retired warp's score from the stack."""
        self._scores.pop(warp.wid, None)
        if self._last_wid == warp.wid:
            self._last_wid = None
        self._apply_cutoff()

    def on_no_progress(self, now: int) -> bool:
        """Re-evaluate the cutoff (scores may have decayed back).

        Returns False so the SM's generic livelock guard can additionally
        reactivate a throttled warp if the cutoff alone did not help (e.g. the
        only allowed warp is parked at a CTA barrier its throttled siblings
        cannot reach).
        """
        self._decay()
        self._apply_cutoff()
        return False
