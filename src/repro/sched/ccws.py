"""Cache-Conscious Wavefront Scheduling (CCWS).

CCWS (Rogers et al., MICRO 2012) is the locality-aware scheduler CIAO argues
against.  Every warp carries a *lost-locality score* (LLS):

* a VTA hit for a warp (it missed on data it recently had in the L1D) bumps
  the warp's score by ``score_bump``;
* scores decay back towards a common ``base_score`` over time.

Scores are stacked: warps are sorted by descending score and only the warps
that fit under a cumulative cutoff of ``base_score x num_resident_warps``
may issue.  A warp with a very large score therefore *pushes* low-locality
warps below the cutoff, throttling them -- i.e. CCWS gives higher priority
to warps with higher potential of data locality and reduces TLP to protect
them, which is precisely the behaviour the paper's Figures 1b and 9 examine
(CCWS stalling more than 40 warps on Backprop).

Within the allowed set the ordering is GTO.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.gpu.instruction import Instruction
from repro.gpu.warp import Warp
from repro.mem.victim_tag_array import VTAHit
from repro.sched.base import WarpScheduler


class CCWSScheduler(WarpScheduler):
    """Lost-locality score based wavefront limiting."""

    name = "ccws"

    # GTO ordering within the allowed set: sticky on the last-issued warp,
    # and notify_issue only tracks the greedy pointer.  Scoring happens in
    # notify_global_access / on_cycle, which the vector engine calls at the
    # exact cycles the reference engine would.
    vector_sticky_select = True
    vector_notify_greedy_only = True
    vector_select_pure_greedy = True

    def __init__(
        self,
        base_score: int = 100,
        score_bump: int = 64,
        decay_per_update: int = 4,
        update_interval: int = 16,
    ) -> None:
        super().__init__()
        if base_score <= 0 or score_bump <= 0:
            raise ValueError("scores must be positive")
        self.base_score = base_score
        self.score_bump = score_bump
        self.decay_per_update = decay_per_update
        self.update_interval = update_interval
        self._scores: dict[int, float] = {}
        #: Warps whose score currently sits above the base (the only ones
        #: decay can touch) — keeps the periodic update proportional to the
        #: number of *interfered* warps, not to occupancy.
        self._elevated: set[int] = set()
        #: Bumped on every score mutation; part of the cutoff change stamp.
        self._score_version = 0
        #: Inputs of the last `_apply_cutoff` run (see `on_cycle`); ``None``
        #: forces recomputation.
        self._last_cutoff_stamp: Optional[tuple] = None
        self._last_wid: Optional[int] = None
        self._next_update = 0

    # ------------------------------------------------------------------
    def attach(self, sm) -> None:
        """Initialise every warp's score to the base score."""
        super().attach(sm)
        self._scores = {w.wid: float(self.base_score) for w in sm.warps}
        self._elevated.clear()
        self._score_version = 0
        self._last_cutoff_stamp = None
        self._next_update = 0

    def score(self, wid: int) -> float:
        """Current lost-locality score of warp ``wid``."""
        return self._scores.get(wid, float(self.base_score))

    # ------------------------------------------------------------------
    def notify_global_access(
        self,
        warp: Warp,
        hit: bool,
        vta_hit: Optional[VTAHit],
        destination: str,
        now: int,
    ) -> None:
        """Bump the victim warp's score when the VTA reports lost locality."""
        if vta_hit is None:
            return
        wid = vta_hit.wid
        self._scores[wid] = self._scores.get(wid, float(self.base_score)) + self.score_bump
        self._elevated.add(wid)
        self._score_version += 1

    def on_cycle_due(self) -> int:
        """``on_cycle`` is a no-op before the next periodic update point."""
        return self._next_update

    def on_cycle(self, now: int) -> None:
        """Periodically decay scores and recompute the allowed warp set.

        The cutoff is a pure function of the score table, the resident warp
        set and the current activation flags.  When none of those changed
        since the last run — no score bumps or decay, no admissions or
        retirements, no activation flips (the SM's livelock guard included)
        — rerunning it would recompute the same allowed set and write
        nothing, so it is skipped outright.  The change stamp folds all of
        those inputs (``_score_version`` plus the SM's admission counter and
        the throttle/reactivate/retire statistics).
        """
        if now < self._next_update:
            return
        self._next_update = now + self.update_interval
        if self._elevated:
            self._decay()
        stamp = self._cutoff_stamp()
        if stamp is not None and stamp == self._last_cutoff_stamp:
            return
        self._apply_cutoff()
        self._last_cutoff_stamp = self._cutoff_stamp()

    def _cutoff_stamp(self) -> Optional[tuple]:
        """Change stamp of every `_apply_cutoff` input (``None``: unknown)."""
        sm = self.sm
        if sm is None:
            return None
        stats = getattr(sm, "stats", None)
        order_seq = getattr(sm, "_order_seq", None)
        if stats is None or order_seq is None:
            return None
        return (
            self._score_version,
            order_seq,
            stats.warps_retired,
            stats.throttle_events,
            stats.reactivate_events,
        )

    def _decay(self) -> None:
        base = float(self.base_score)
        decay = self.decay_per_update
        scores = self._scores
        for wid in list(self._elevated):
            score = scores.get(wid)
            if score is None or score <= base:
                self._elevated.discard(wid)
                continue
            next_score = score - decay
            if next_score <= base:
                next_score = base
                self._elevated.discard(wid)
            scores[wid] = next_score
            self._score_version += 1

    def _apply_cutoff(self) -> None:
        """Stack scores and throttle the warps pushed below the cutoff.

        This runs on every periodic update (and on warp retirement), so the
        sort works on precomputed key tuples with direct score-table access
        — the ordering is exactly ``(-score, assigned_at, wid)`` as before.
        """
        sm = self.sm
        if sm is None:
            return
        scores = self._scores
        base = float(self.base_score)
        resident = [w for w in sm.warps if not w.finished]
        if not resident:
            return
        cutoff = self.base_score * len(resident)
        # wid is unique, so the sort never compares the trailing Warp.
        ordered = sorted(
            (-scores.get(w.wid, base), w.assigned_at, w.wid, w) for w in resident
        )
        cumulative = 0.0
        allowed_ids: set[int] = set()
        for negated_score, _, wid, _warp in ordered:
            score = -negated_score
            if cumulative + score <= cutoff or not allowed_ids:
                allowed_ids.add(wid)
            cumulative += score
        stats = sm.stats
        for warp in resident:
            allowed = warp.wid in allowed_ids
            if warp.active != allowed:
                warp.active = allowed
                if allowed:
                    stats.reactivate_events += 1
                else:
                    stats.throttle_events += 1

    # ------------------------------------------------------------------
    def select(self, issuable: Sequence[Warp], now: int) -> Optional[Warp]:
        """GTO among warps that survived the score cutoff."""
        if not issuable:
            return None
        return self.greedy_then_oldest(issuable, self._last_wid)

    def notify_issue(self, warp: Warp, instruction: Instruction, now: int) -> None:
        """Track the greedy warp."""
        self._last_wid = warp.wid

    def on_warp_retired(self, warp: Warp, now: int) -> None:
        """Remove the retired warp's score from the stack."""
        self._scores.pop(warp.wid, None)
        self._elevated.discard(warp.wid)
        self._score_version += 1
        if self._last_wid == warp.wid:
            self._last_wid = None
        self._apply_cutoff()
        self._last_cutoff_stamp = self._cutoff_stamp()

    def on_no_progress(self, now: int) -> bool:
        """Re-evaluate the cutoff (scores may have decayed back).

        Returns False so the SM's generic livelock guard can additionally
        reactivate a throttled warp if the cutoff alone did not help (e.g. the
        only allowed warp is parked at a CTA barrier its throttled siblings
        cannot reach).
        """
        self._decay()
        self._apply_cutoff()
        return False
