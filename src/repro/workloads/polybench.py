"""PolyBench/GPU benchmark models.

PolyBench kernels are dense linear-algebra codes with regular, strided
accesses.  Table II places ATAX / BICG / MVT in the large-working-set (LWS)
class with a best static warp limit of only 2 warps, GESUMMV / SYR2K / SYRK
in the small-working-set (SWS) class, and 2DCONV / CORR among the
compute-intensive (CI) workloads.

Model rationale per benchmark:

* **ATAX / BICG / MVT** compute matrix-vector products (twice, for the
  transposed product).  Each warp streams rows of a 64 MB matrix (no reuse)
  while repeatedly re-referencing vector segments and partial-result tiles
  (high potential of data locality).  A few KB of reuse per warp means a
  couple of warps fit the 16 KB L1D -- hence ``Nwrp = 2`` -- and 48 warps
  thrash it hard.  ATAX additionally exposes the paper's Figure 9 structure:
  a memory-intensive first phase followed by a compute-intensive second
  phase, which static wavefront limiting cannot adapt to.
* **GESUMMV / SYR2K / SYRK** are rank-k updates working on tiles of the
  output matrix: roughly 1 KB of live data per warp, re-referenced many
  times -- the canonical SWS behaviour where interference, not capacity, is
  the problem.
* **2DCONV / CORR** perform a convolution / correlation dominated by
  arithmetic on registers; memory traffic is light and well coalesced.
"""

from __future__ import annotations

from repro.workloads.spec import BenchmarkSpec, ModelParams, PatternKind, WorkloadClass


def _lws_linear_algebra(two_phase: bool = False) -> ModelParams:
    """Shared model parameters of the LWS matrix-vector kernels.

    3 KB reuse tiles swept cyclically (9 KB for aggressor warps): two warps
    fit the 16 KB L1D (hence ``Nwrp = 2``), while all 48 resident warps
    overflow even the combined L1D + shared-memory capacity, so redirection
    alone cannot absorb the interference and selective throttling is needed.
    """
    return ModelParams(
        pattern=PatternKind.TWO_PHASE if two_phase else PatternKind.LINEAR_ALGEBRA,
        instructions_per_warp=2000,
        mem_fraction=0.40,
        tile_kb=3.0,
        chunk_blocks=256,
        chunk_repeats=1,
        stream_fraction=0.08,
        aggressor_period=4,
        aggressor_factor=3.0,
        phase_split=0.55,
        phase2_mem_fraction=0.05,
    )


def _sws_rank_update(tile_kb: float = 0.625) -> ModelParams:
    """Shared model parameters of the SWS tiled-update kernels.

    0.625 KB reuse tiles swept cyclically (~1.9 KB for aggressors): a handful
    of warps fit the L1D, and the full 48-warp footprint fits once CIAO
    spreads the heavy warps over the unused shared memory.
    """
    return ModelParams(
        pattern=PatternKind.LINEAR_ALGEBRA,
        instructions_per_warp=2000,
        mem_fraction=0.40,
        tile_kb=tile_kb,
        chunk_blocks=256,
        chunk_repeats=1,
        stream_fraction=0.05,
        aggressor_period=4,
        aggressor_factor=3.0,
    )


ATAX = BenchmarkSpec(
    name="ATAX",
    suite="PolyBench",
    workload_class=WorkloadClass.LWS,
    apki=64,
    input_size="64MB",
    nwrp=2,
    fsmem=0.0,
    uses_barriers=False,
    description="Matrix-transpose-times-vector product; memory-intensive first "
    "phase followed by a compute-intensive reduction phase.",
    model=_lws_linear_algebra(two_phase=True),
)

BICG = BenchmarkSpec(
    name="BICG",
    suite="PolyBench",
    workload_class=WorkloadClass.LWS,
    apki=64,
    input_size="64MB",
    nwrp=2,
    fsmem=0.0,
    uses_barriers=False,
    description="BiCG sub-kernel of the BiCGStab solver: two matrix-vector "
    "products sharing a streamed matrix.",
    model=_lws_linear_algebra(),
)

MVT = BenchmarkSpec(
    name="MVT",
    suite="PolyBench",
    workload_class=WorkloadClass.LWS,
    apki=64,
    input_size="64MB",
    nwrp=2,
    fsmem=0.0,
    uses_barriers=False,
    description="Matrix-vector product and transpose: streamed matrix rows with "
    "reused vector segments.",
    model=_lws_linear_algebra(),
)

GESUMMV = BenchmarkSpec(
    name="GESUMMV",
    suite="PolyBench",
    workload_class=WorkloadClass.SWS,
    apki=136,
    input_size="128MB",
    nwrp=2,
    fsmem=0.0,
    uses_barriers=False,
    description="Scalar-vector-matrix multiplication; very high access rate on "
    "small per-warp tiles.",
    model=ModelParams(
        pattern=PatternKind.LINEAR_ALGEBRA,
        instructions_per_warp=2000,
        mem_fraction=0.42,
        tile_kb=0.625,
        chunk_blocks=256,
        chunk_repeats=1,
        stream_fraction=0.05,
        aggressor_period=4,
        aggressor_factor=3.0,
    ),
)

SYR2K = BenchmarkSpec(
    name="SYR2K",
    suite="PolyBench",
    workload_class=WorkloadClass.SWS,
    apki=108,
    input_size="48MB",
    nwrp=6,
    fsmem=0.0,
    uses_barriers=False,
    description="Symmetric rank-2k update: tiled accumulation with strong reuse "
    "inside each output tile.",
    model=_sws_rank_update(tile_kb=0.625),
)

SYRK = BenchmarkSpec(
    name="SYRK",
    suite="PolyBench",
    workload_class=WorkloadClass.SWS,
    apki=94,
    input_size="512KB",
    nwrp=6,
    fsmem=0.0,
    uses_barriers=False,
    description="Symmetric rank-k update; the paper's representative SWS workload "
    "in Figure 10.",
    model=_sws_rank_update(tile_kb=0.625),
)

CONV2D = BenchmarkSpec(
    name="2DCONV",
    suite="PolyBench",
    workload_class=WorkloadClass.CI,
    apki=9,
    input_size="64MB",
    nwrp=36,
    fsmem=0.0,
    uses_barriers=False,
    description="2D convolution: stencil reads with high arithmetic intensity.",
    model=ModelParams(
        pattern=PatternKind.STENCIL,
        instructions_per_warp=2400,
        mem_fraction=0.06,
        tile_kb=0.5,
        chunk_blocks=4,
        chunk_repeats=2,
        hot_kb=4.0,
        hot_fraction=0.40,
        stream_fraction=0.05,
        aggressor_period=6,
        aggressor_factor=2.0,
    ),
)

CORR = BenchmarkSpec(
    name="CORR",
    suite="PolyBench",
    workload_class=WorkloadClass.CI,
    apki=10,
    input_size="2MB",
    nwrp=48,
    fsmem=0.0,
    uses_barriers=False,
    description="Correlation matrix computation; compute-bound with small reused "
    "column tiles.",
    model=ModelParams(
        pattern=PatternKind.LINEAR_ALGEBRA,
        instructions_per_warp=2400,
        mem_fraction=0.07,
        tile_kb=0.375,
        chunk_blocks=3,
        chunk_repeats=3,
        hot_kb=4.0,
        hot_fraction=0.40,
        stream_fraction=0.05,
        aggressor_period=6,
        aggressor_factor=2.0,
    ),
)

#: All PolyBench benchmark specs defined by this module.
POLYBENCH_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    ATAX,
    BICG,
    MVT,
    GESUMMV,
    SYR2K,
    SYRK,
    CONV2D,
    CORR,
)
