"""Turn a :class:`BenchmarkSpec` into an executable kernel launch.

:class:`SyntheticKernelModel` generates, per warp, a deterministic
instruction stream matching the benchmark's model parameters: a mix of ALU
instructions, global loads/stores drawn from the benchmark's access-pattern
archetype, scratchpad accesses (for benchmarks with ``Fsmem > 0``) and CTA
barriers.

Address-space layout (byte addresses):

* each *logical* warp (CTA index x warps-per-CTA + warp index) owns a
  private reuse tile in the ``TILE_REGION`` and a private streaming range in
  the ``STREAM_REGION``, so tiles of different warps never alias by accident
  -- they only interact through cache capacity and set conflicts, which is
  exactly the interference the paper studies;
* every ``aggressor_period``-th warp is an *aggressor*: its tile is
  ``aggressor_factor`` times larger and a larger share of its accesses
  stream, so it causes many more evictions than it suffers.  This produces
  the strongly non-uniform interference of Figures 1a / 4a and gives the
  interference-aware schemes something to find.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterator, Optional

from repro.gpu.cta import KernelLaunch, WarpStreamFactory
from repro.gpu.instruction import Instruction, InstructionKind
from repro.mem.address import BLOCK_SIZE
from repro.workloads import patterns
from repro.workloads.spec import BenchmarkSpec, PatternKind

#: Base of the shared hot data region (the re-read vector / operand tile /
#: centroid array that every warp of the kernel keeps touching).
HOT_REGION = 0x0800_0000
#: Base of the per-warp reuse tiles.
TILE_REGION = 0x1000_0000
#: Bytes reserved per logical warp inside the tile region.
TILE_STRIDE = 1 << 20  # 1 MiB
#: Base of the per-warp streaming ranges.
STREAM_REGION = 0x4000_0000
#: Bytes reserved per logical warp inside the streaming region.
STREAM_STRIDE = 4 << 20  # 4 MiB
#: Fraction of global memory accesses that are stores.  Kept low: the
#: evaluated kernels are read-dominated (output vectors / reduced tiles),
#: and under the write-through/no-allocate L1D policy stores only consume
#: downstream bandwidth.
STORE_FRACTION = 0.05
#: Bytes separating tenant address spaces (see :func:`isolate_address_space`).
#: Far above every region base + per-warp stride, so two tenants' working
#: sets can never alias.
TENANT_ADDRESS_STRIDE = 1 << 40


def isolate_address_space(
    factory: WarpStreamFactory, address_space: int
) -> WarpStreamFactory:
    """Shift a warp-stream factory's *global* addresses into a private space.

    Co-located tenants are separate processes: their virtual address spaces
    never alias, so one tenant's DRAM fills must not warm another tenant's
    L2 lines.  ``address_space`` is a small colour; colour 0 returns the
    factory unchanged (the kernel's natural addresses — what single-kernel
    launches and same-address-space tenants use), any other colour offsets
    every global LOAD / STORE address by ``colour * TENANT_ADDRESS_STRIDE``.
    Scratchpad offsets, barriers and ALU instructions pass through untouched.
    """
    if address_space == 0:
        return factory
    offset = address_space * TENANT_ADDRESS_STRIDE

    def wrapped(cta_index: int, warp_index: int, wid: int) -> Iterator[Instruction]:
        for instruction in factory(cta_index, warp_index, wid):
            kind = instruction.kind
            if kind is InstructionKind.LOAD or kind is InstructionKind.STORE:
                yield Instruction(
                    kind, tuple(a + offset for a in instruction.addresses)
                )
            else:
                yield instruction

    return wrapped


class SyntheticKernelModel:
    """Instruction-stream generator for one benchmark at one scale."""

    def __init__(
        self,
        spec: BenchmarkSpec,
        *,
        scale: float = 1.0,
        seed: int = 1,
        num_ctas: Optional[int] = None,
        warps_per_cta: Optional[int] = None,
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        spec.validate()
        self.spec = spec
        self.scale = scale
        self.seed = seed
        self.num_ctas = num_ctas if num_ctas is not None else spec.num_ctas
        self.warps_per_cta = warps_per_cta if warps_per_cta is not None else spec.warps_per_cta
        if self.num_ctas <= 0 or self.warps_per_cta <= 0:
            raise ValueError("launch geometry must be positive")

    # ------------------------------------------------------------------
    @property
    def instructions_per_warp(self) -> int:
        """Scaled warp-instruction count per warp (at least 50)."""
        return max(50, int(self.spec.model.instructions_per_warp * self.scale))

    def kernel_launch(self) -> KernelLaunch:
        """Build the :class:`KernelLaunch` for this model."""
        return KernelLaunch(
            name=self.spec.name,
            num_ctas=self.num_ctas,
            warps_per_cta=self.warps_per_cta,
            stream_factory=self._warp_stream,
            shared_mem_per_cta=self.spec.shared_mem_per_cta(),
        )

    # ------------------------------------------------------------------
    # Per-warp stream construction
    # ------------------------------------------------------------------
    def _logical_index(self, cta_index: int, warp_index: int) -> int:
        return cta_index * self.warps_per_cta + warp_index

    def _is_aggressor(self, logical_index: int) -> bool:
        period = max(1, self.spec.model.aggressor_period)
        return logical_index % period == period - 1

    def _tile_blocks(self, logical_index: int) -> int:
        model = self.spec.model
        blocks = max(2, int(model.tile_kb * 1024 / BLOCK_SIZE))
        if self._is_aggressor(logical_index):
            blocks = max(blocks + 1, int(blocks * model.aggressor_factor))
        # Never exceed the per-warp tile region.
        return min(blocks, TILE_STRIDE // BLOCK_SIZE)

    def _reuse_iterator(self, rng: random.Random, logical_index: int) -> Iterator[list[int]]:
        model = self.spec.model
        tile_base = TILE_REGION + logical_index * TILE_STRIDE
        tile_blocks = self._tile_blocks(logical_index)
        if model.pattern in (PatternKind.LINEAR_ALGEBRA, PatternKind.TWO_PHASE):
            return patterns.tiled_reuse_accesses(
                tile_base,
                tile_blocks,
                chunk_blocks=model.chunk_blocks,
                chunk_repeats=model.chunk_repeats,
            )
        if model.pattern in (PatternKind.IRREGULAR, PatternKind.MAPREDUCE):
            return patterns.irregular_accesses(
                rng,
                tile_base,
                tile_blocks,
                blocks_per_access=max(1, model.divergence),
                hot_fraction=0.35,
                hot_blocks=max(4, tile_blocks // 4),
            )
        if model.pattern is PatternKind.STENCIL:
            row_blocks = max(2, model.chunk_blocks)
            num_rows = max(2, tile_blocks // row_blocks)
            return patterns.stencil_accesses(
                tile_base, row_blocks, num_rows, sweeps=model.chunk_repeats
            )
        raise ValueError(f"unhandled pattern {model.pattern}")

    def _stream_iterator(self, logical_index: int) -> Iterator[list[int]]:
        stream_base = STREAM_REGION + logical_index * STREAM_STRIDE
        stream_blocks = STREAM_STRIDE // BLOCK_SIZE // 4
        return patterns.streaming_accesses(stream_base, stream_blocks)

    def _hot_iterator(self, rng: random.Random, logical_index: int) -> Optional[Iterator[list[int]]]:
        """Cyclic sweep over the shared hot region, phase-shifted per warp."""
        model = self.spec.model
        hot_blocks = int(model.hot_kb * 1024 / BLOCK_SIZE)
        if hot_blocks <= 0:
            return None
        start_block = rng.randrange(hot_blocks)
        if model.pattern in (PatternKind.IRREGULAR, PatternKind.MAPREDUCE):
            return patterns.irregular_accesses(
                rng,
                HOT_REGION,
                hot_blocks,
                blocks_per_access=max(1, model.divergence),
                hot_fraction=0.25,
                hot_blocks=max(4, hot_blocks // 8),
            )
        return patterns.tiled_reuse_accesses(
            HOT_REGION + start_block * BLOCK_SIZE,
            hot_blocks,
            chunk_blocks=hot_blocks,
            chunk_repeats=1,
        )

    def _access_mix_for(self, logical_index: int) -> tuple[float, float]:
        """Return (stream_fraction, hot_fraction) for this warp.

        Aggressor warps stream far more and touch the shared hot structure
        less, so they are the warps whose insertions evict everyone else's
        hot data -- the concentrated, non-uniform interference of Figure 4.
        """
        model = self.spec.model
        stream = model.stream_fraction
        hot = model.hot_fraction
        if self._is_aggressor(logical_index):
            stream = min(1.0, stream + 0.35)
            hot = hot * 0.5
            if stream + hot > 1.0:
                hot = max(0.0, 1.0 - stream)
        return stream, hot

    def _mem_fraction_at(self, instruction_index: int, total: int) -> float:
        model = self.spec.model
        if model.pattern is PatternKind.TWO_PHASE:
            if instruction_index < model.phase_split * total:
                return model.mem_fraction
            return model.phase2_mem_fraction
        return model.mem_fraction

    def _warp_stream(self, cta_index: int, warp_index: int, wid: int) -> Iterator[Instruction]:
        """Yield the instruction stream of one warp (deterministic per warp)."""
        model = self.spec.model
        logical_index = self._logical_index(cta_index, warp_index)
        # zlib.crc32 (not hash()) keys the per-warp RNG: str hashes are
        # randomized per process (PYTHONHASHSEED), which silently made every
        # simulation irreproducible across interpreter invocations — the
        # golden-stats fixtures and the on-disk result cache both require
        # process-independent streams.
        name_key = zlib.crc32(self.spec.name.encode("utf-8")) % (1 << 30)
        rng = random.Random((self.seed * 1_000_003) ^ (logical_index * 7919) ^ name_key)
        reuse_iter = self._reuse_iterator(rng, logical_index)
        stream_iter = self._stream_iterator(logical_index)
        hot_iter = self._hot_iterator(rng, logical_index)
        stream_fraction, hot_fraction = self._access_mix_for(logical_index)
        if hot_iter is None:
            hot_fraction = 0.0
        total = self.instructions_per_warp
        barrier_interval = model.barrier_interval if self.spec.uses_barriers else 0
        scratch_bytes = max(128, self.spec.shared_mem_per_cta(), 1024)

        emitted = 0
        while emitted < total:
            if (
                barrier_interval
                and emitted > 0
                and emitted % barrier_interval == 0
            ):
                yield Instruction.barrier()
                emitted += 1
                continue
            draw = rng.random()
            mem_fraction = self._mem_fraction_at(emitted, total)
            scratch_fraction = model.scratchpad_fraction
            if draw < mem_fraction:
                source = rng.random()
                if source < stream_fraction:
                    lanes = next(stream_iter)
                elif source < stream_fraction + hot_fraction and hot_iter is not None:
                    lanes = next(hot_iter)
                else:
                    lanes = next(reuse_iter)
                if rng.random() < STORE_FRACTION:
                    yield Instruction.store(lanes)
                else:
                    yield Instruction.load(lanes)
            elif draw < mem_fraction + scratch_fraction:
                offset = rng.randrange(0, max(1, scratch_bytes // 8)) * 8
                offsets = [
                    (offset + lane * 8) % scratch_bytes for lane in range(patterns.WARP_LANES)
                ]
                if rng.random() < 0.5:
                    yield Instruction.shared_store(offsets)
                else:
                    yield Instruction.shared_load(offsets)
            else:
                yield Instruction.alu()
            emitted += 1
        yield Instruction.exit()


def build_kernel(
    spec: BenchmarkSpec,
    *,
    scale: float = 1.0,
    seed: int = 1,
    num_ctas: Optional[int] = None,
    warps_per_cta: Optional[int] = None,
) -> KernelLaunch:
    """Convenience wrapper: build the kernel launch for ``spec`` directly."""
    model = SyntheticKernelModel(
        spec,
        scale=scale,
        seed=seed,
        num_ctas=num_ctas,
        warps_per_cta=warps_per_cta,
    )
    return model.kernel_launch()
