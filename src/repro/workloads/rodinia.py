"""Rodinia benchmark models.

The Rodinia workloads the paper uses span all three classes:

* **Kmeans** -- LWS: each warp walks feature vectors of its assigned points
  (streaming) and repeatedly re-reads the centroid array (reuse); with a
  101 MB input the aggregate footprint dwarfs the L1D and only two warps'
  worth of reuse fits (``Nwrp = 2``).
* **Gaussian, NN** -- CI: elimination / nearest-neighbour kernels dominated
  by arithmetic with small, well-behaved footprints.
* **Backprop** -- CI but with notable cache misses concentrated in a few
  warps; the paper's Figure 1 motivating example.  It uses 13% of shared
  memory for the weight tiles and synchronises layers with barriers.
* **Hotspot, Lud, NW** -- CI stencil / factorisation / alignment kernels
  with heavy barrier use and 19-50% of shared memory consumed by the
  program, which squeezes the space CIAO can borrow.
"""

from __future__ import annotations

from repro.workloads.spec import BenchmarkSpec, ModelParams, PatternKind, WorkloadClass


KMEANS = BenchmarkSpec(
    name="Kmeans",
    suite="Rodinia",
    workload_class=WorkloadClass.LWS,
    apki=85,
    input_size="101MB",
    nwrp=2,
    fsmem=0.0,
    uses_barriers=True,
    description="Rodinia k-means: streamed feature vectors with a hot, reused "
    "centroid array; the paper's Figure 4a interference example.",
    model=ModelParams(
        pattern=PatternKind.IRREGULAR,
        instructions_per_warp=2000,
        mem_fraction=0.40,
        tile_kb=3.0,
        chunk_blocks=256,
        chunk_repeats=1,
        stream_fraction=0.10,
        aggressor_period=4,
        aggressor_factor=3.0,
        divergence=2,
        barrier_interval=500,
    ),
)

GAUSSIAN = BenchmarkSpec(
    name="Gaussian",
    suite="Rodinia",
    workload_class=WorkloadClass.CI,
    apki=18,
    input_size="339KB",
    nwrp=48,
    fsmem=0.0,
    uses_barriers=False,
    description="Gaussian elimination: row updates with high arithmetic intensity.",
    model=ModelParams(
        pattern=PatternKind.LINEAR_ALGEBRA,
        instructions_per_warp=2400,
        mem_fraction=0.10,
        tile_kb=0.5,
        chunk_blocks=4,
        chunk_repeats=3,
        hot_kb=4.0,
        hot_fraction=0.40,
        stream_fraction=0.05,
        aggressor_period=6,
        aggressor_factor=2.0,
    ),
)

BACKPROP = BenchmarkSpec(
    name="Backprop",
    suite="Rodinia",
    workload_class=WorkloadClass.CI,
    apki=3,
    input_size="5MB",
    nwrp=36,
    fsmem=0.13,
    uses_barriers=True,
    description="Neural-network back-propagation: compute-bound layer updates, "
    "but a few warps' weight-tile accesses interfere heavily (Figure 1).",
    model=ModelParams(
        pattern=PatternKind.LINEAR_ALGEBRA,
        instructions_per_warp=2600,
        mem_fraction=0.08,
        tile_kb=0.75,
        chunk_blocks=4,
        chunk_repeats=4,
        hot_kb=6.0,
        hot_fraction=0.45,
        stream_fraction=0.05,
        aggressor_period=6,
        aggressor_factor=4.0,
        barrier_interval=400,
        scratchpad_fraction=0.05,
    ),
)

HOTSPOT = BenchmarkSpec(
    name="Hotspot",
    suite="Rodinia",
    workload_class=WorkloadClass.CI,
    apki=1,
    input_size="2MB",
    nwrp=48,
    fsmem=0.19,
    uses_barriers=True,
    description="Thermal simulation stencil: tiled time steps in shared memory, "
    "very few global accesses.",
    model=ModelParams(
        pattern=PatternKind.STENCIL,
        instructions_per_warp=2600,
        mem_fraction=0.03,
        tile_kb=0.5,
        chunk_blocks=4,
        chunk_repeats=2,
        hot_kb=4.0,
        hot_fraction=0.40,
        stream_fraction=0.05,
        aggressor_period=8,
        aggressor_factor=2.0,
        barrier_interval=300,
        scratchpad_fraction=0.10,
    ),
)

LUD = BenchmarkSpec(
    name="Lud",
    suite="Rodinia",
    workload_class=WorkloadClass.CI,
    apki=2,
    input_size="25KB",
    nwrp=38,
    fsmem=0.50,
    uses_barriers=True,
    description="LU decomposition: diagonal/perimeter/internal kernels working "
    "out of shared memory with frequent barriers.",
    model=ModelParams(
        pattern=PatternKind.LINEAR_ALGEBRA,
        instructions_per_warp=2600,
        mem_fraction=0.03,
        tile_kb=0.375,
        chunk_blocks=3,
        chunk_repeats=3,
        hot_kb=4.0,
        hot_fraction=0.40,
        stream_fraction=0.05,
        aggressor_period=8,
        aggressor_factor=2.0,
        barrier_interval=250,
        scratchpad_fraction=0.15,
    ),
)

NN = BenchmarkSpec(
    name="NN",
    suite="Rodinia",
    workload_class=WorkloadClass.CI,
    apki=8,
    input_size="334KB",
    nwrp=48,
    fsmem=0.0,
    uses_barriers=False,
    description="Nearest neighbour: distance computation over a small record "
    "array; compute-bound.",
    model=ModelParams(
        pattern=PatternKind.LINEAR_ALGEBRA,
        instructions_per_warp=2400,
        mem_fraction=0.06,
        tile_kb=0.375,
        chunk_blocks=3,
        chunk_repeats=3,
        hot_kb=4.0,
        hot_fraction=0.40,
        stream_fraction=0.05,
        aggressor_period=6,
        aggressor_factor=2.0,
    ),
)

NW = BenchmarkSpec(
    name="NW",
    suite="Rodinia",
    workload_class=WorkloadClass.CI,
    apki=5,
    input_size="32MB",
    nwrp=48,
    fsmem=0.35,
    uses_barriers=True,
    description="Needleman-Wunsch sequence alignment: wavefront sweeps over the "
    "score matrix with barriers between anti-diagonals.",
    model=ModelParams(
        pattern=PatternKind.STENCIL,
        instructions_per_warp=2400,
        mem_fraction=0.05,
        tile_kb=0.5,
        chunk_blocks=4,
        chunk_repeats=2,
        hot_kb=4.0,
        hot_fraction=0.40,
        stream_fraction=0.05,
        aggressor_period=8,
        aggressor_factor=2.0,
        barrier_interval=300,
        scratchpad_fraction=0.10,
    ),
)

#: All Rodinia benchmark specs defined by this module.
RODINIA_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    KMEANS,
    GAUSSIAN,
    BACKPROP,
    HOTSPOT,
    LUD,
    NN,
    NW,
)
