"""Reusable access-pattern building blocks for the workload models.

Every benchmark model composes a per-warp instruction stream out of a small
set of archetypal GPU memory behaviours:

* :func:`tiled_reuse_accesses` -- a warp repeatedly re-references a small
  chunk of its private tile before moving to the next chunk.  This is the
  "potential of data locality" the paper talks about: the re-references hit
  if nothing evicted the chunk in between, and produce VTA hits (detected
  lost locality) if another warp's accesses did.
* :func:`streaming_accesses` -- a warp walks a large array once, no reuse.
  Streaming warps are classic cache polluters.
* :func:`strided_conflict_accesses` -- large power-of-two strides that
  concentrate on a few cache sets, the worst-case interference generator.
* :func:`irregular_accesses` -- pseudo-random accesses within a footprint
  with a configurable number of distinct blocks per instruction (memory
  divergence), modelling index-driven kernels such as KMN / Kmeans / II.
* :func:`stencil_accesses` -- neighbouring rows re-referenced a few times,
  modelling the Rodinia stencil codes (Hotspot, NW, 2DCONV).

All helpers yield lists of per-lane byte addresses (one list per memory
instruction) and are deterministic given their ``random.Random`` instance.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.mem.address import BLOCK_SIZE

#: Lanes per warp; address lists model a fully-coalesced warp access by
#: emitting lane addresses within one 128-byte block.
WARP_LANES = 32
_LANE_STRIDE = BLOCK_SIZE // WARP_LANES  # 4 bytes per lane


def _coalesced(block_byte_base: int) -> list[int]:
    """Per-lane addresses of a fully coalesced access to one 128-byte block."""
    return [block_byte_base + lane * _LANE_STRIDE for lane in range(WARP_LANES)]


def _divergent(block_bases: Sequence[int]) -> list[int]:
    """Per-lane addresses spread over several blocks (memory divergence)."""
    if not block_bases:
        raise ValueError("divergent access needs at least one block")
    lanes: list[int] = []
    for lane in range(WARP_LANES):
        base = block_bases[lane % len(block_bases)]
        lanes.append(base + (lane * _LANE_STRIDE) % BLOCK_SIZE)
    return lanes


def tiled_reuse_accesses(
    tile_base: int,
    tile_blocks: int,
    *,
    chunk_blocks: int = 4,
    chunk_repeats: int = 3,
) -> Iterator[list[int]]:
    """Yield accesses over a tile with short-reuse-distance chunks.

    The tile (``tile_blocks`` 128-byte blocks starting at ``tile_base``) is
    walked chunk by chunk; each chunk of ``chunk_blocks`` blocks is swept
    ``chunk_repeats`` times before moving on, then the walk wraps around the
    tile forever.  Reuse distance within a chunk is at most ``chunk_blocks``
    blocks, well inside the 8-entry victim tag array, so lost locality is
    detectable exactly as in the real hardware.
    """
    if tile_blocks <= 0:
        raise ValueError("tile must contain at least one block")
    chunk_blocks = max(1, min(chunk_blocks, tile_blocks))
    chunk_starts = list(range(0, tile_blocks, chunk_blocks))
    while True:
        for start in chunk_starts:
            chunk = [
                tile_base + ((start + offset) % tile_blocks) * BLOCK_SIZE
                for offset in range(chunk_blocks)
            ]
            for _ in range(max(1, chunk_repeats)):
                for block_byte in chunk:
                    yield _coalesced(block_byte)


def streaming_accesses(base: int, length_blocks: int, *, stride_blocks: int = 1) -> Iterator[list[int]]:
    """Yield a single pass over ``length_blocks`` blocks, then wrap.

    Streaming data is touched once per pass, so it has no reuse of its own
    but steadily evicts other warps' data.
    """
    if length_blocks <= 0:
        raise ValueError("stream must cover at least one block")
    index = 0
    while True:
        block_byte = base + (index % length_blocks) * BLOCK_SIZE * stride_blocks
        yield _coalesced(block_byte)
        index += 1


def strided_conflict_accesses(
    base: int,
    num_sets: int,
    *,
    target_sets: int = 4,
    footprint_blocks: int = 64,
) -> Iterator[list[int]]:
    """Yield accesses that concentrate on a handful of cache sets.

    Consecutive accesses step by ``num_sets`` blocks so that (under linear
    indexing) they all land in the same set; ``target_sets`` adjacent sets
    are cycled to keep the pattern from being a pure single-set ping-pong.
    XOR hashing spreads these somewhat, as on the real device, but the
    pressure per set remains far above average.
    """
    if footprint_blocks <= 0:
        raise ValueError("footprint must contain at least one block")
    index = 0
    while True:
        way = index % footprint_blocks
        set_offset = index % max(1, target_sets)
        block = way * num_sets + set_offset
        yield _coalesced(base + block * BLOCK_SIZE)
        index += 1


def irregular_accesses(
    rng: random.Random,
    base: int,
    footprint_blocks: int,
    *,
    blocks_per_access: int = 2,
    hot_fraction: float = 0.2,
    hot_blocks: int = 32,
) -> Iterator[list[int]]:
    """Yield divergent, pseudo-random accesses within a footprint.

    ``hot_fraction`` of the accesses go to a small hot region (the index /
    centroid arrays of KMN / Kmeans), the rest are spread over the whole
    footprint.  Each access touches ``blocks_per_access`` distinct blocks,
    modelling intra-warp memory divergence.
    """
    if footprint_blocks <= 0:
        raise ValueError("footprint must contain at least one block")
    hot_blocks = max(1, min(hot_blocks, footprint_blocks))
    while True:
        bases: list[int] = []
        for _ in range(max(1, blocks_per_access)):
            if rng.random() < hot_fraction:
                block = rng.randrange(hot_blocks)
            else:
                block = rng.randrange(footprint_blocks)
            bases.append(base + block * BLOCK_SIZE)
        yield _divergent(bases)


def stencil_accesses(
    base: int,
    row_blocks: int,
    num_rows: int,
    *,
    halo_rows: int = 1,
    sweeps: int = 4,
) -> Iterator[list[int]]:
    """Yield a stencil sweep: each row plus its halo neighbours, repeatedly.

    Models the Rodinia stencil kernels (Hotspot, NW, 2DCONV): a warp works
    on one row segment at a time, touching the rows above/below, and the
    whole assigned region is swept ``sweeps`` times (time steps), giving
    moderate, well-structured reuse.
    """
    if row_blocks <= 0 or num_rows <= 0:
        raise ValueError("stencil needs a positive region")
    while True:
        for _ in range(max(1, sweeps)):
            for row in range(num_rows):
                for col in range(row_blocks):
                    for neighbour in range(-halo_rows, halo_rows + 1):
                        target_row = min(num_rows - 1, max(0, row + neighbour))
                        block_byte = base + (target_row * row_blocks + col) * BLOCK_SIZE
                        yield _coalesced(block_byte)


def interleave(
    rng: random.Random,
    primary: Iterator[list[int]],
    secondary: Iterator[list[int]],
    secondary_fraction: float,
) -> Iterator[list[int]]:
    """Mix two access streams, drawing from ``secondary`` with a probability."""
    if not 0.0 <= secondary_fraction <= 1.0:
        raise ValueError("secondary_fraction must be within [0, 1]")
    while True:
        if rng.random() < secondary_fraction:
            yield next(secondary)
        else:
            yield next(primary)
