"""Mars (MapReduce-on-GPU) benchmark models.

The Mars workloads are MapReduce kernels: map tasks hash keys and scatter
intermediate key/value pairs, reduce tasks walk per-key buckets.  Their
memory behaviour is index-driven and therefore irregular; several of them
make heavy use of the program-managed shared memory for the intermediate
buffers (Table II: PVC 33%, SS 50%).

Table II classification:

* **KMN** (k-means on Mars) -- LWS, irregular centroid/index accesses,
  barriers between iterations; the paper's representative LWS workload in
  Figure 10.
* **II** (inverted index), **PVC** (page-view count), **SS** (similarity
  score), **SM** (string match), **WC** (word count) -- SWS.  PVC/SS/SM/WC
  run best with all 48 warps (``Nwrp = 48``): their per-warp footprints are
  small, and throttling mostly costs TLP -- which is why interference-aware
  isolation (CIAO-P) is the profitable knob for them.
"""

from __future__ import annotations

from repro.workloads.spec import BenchmarkSpec, ModelParams, PatternKind, WorkloadClass


def _mapreduce(
    *,
    tile_kb: float,
    mem_fraction: float,
    scratchpad_fraction: float,
    divergence: int = 2,
    barrier_interval: int = 400,
    aggressor_factor: float = 3.0,
) -> ModelParams:
    """Common shape of the Mars kernels: irregular accesses + scratchpad use."""
    return ModelParams(
        pattern=PatternKind.MAPREDUCE,
        instructions_per_warp=2000,
        mem_fraction=mem_fraction,
        tile_kb=tile_kb,
        chunk_blocks=256,
        chunk_repeats=1,
        stream_fraction=0.05,
        aggressor_period=4,
        aggressor_factor=aggressor_factor,
        divergence=divergence,
        barrier_interval=barrier_interval,
        scratchpad_fraction=scratchpad_fraction,
    )


KMN = BenchmarkSpec(
    name="KMN",
    suite="Mars",
    workload_class=WorkloadClass.LWS,
    apki=46,
    input_size="168KB",
    nwrp=4,
    fsmem=0.01,
    uses_barriers=True,
    description="Mars k-means: irregular point/centroid accesses over a large "
    "footprint with per-iteration barriers.",
    model=ModelParams(
        pattern=PatternKind.IRREGULAR,
        instructions_per_warp=2000,
        mem_fraction=0.40,
        tile_kb=3.0,
        chunk_blocks=256,
        chunk_repeats=1,
        stream_fraction=0.10,
        aggressor_period=4,
        aggressor_factor=3.0,
        divergence=3,
        barrier_interval=500,
        scratchpad_fraction=0.01,
    ),
)

II = BenchmarkSpec(
    name="II",
    suite="Mars",
    workload_class=WorkloadClass.SWS,
    apki=75,
    input_size="28MB",
    nwrp=4,
    fsmem=0.0,
    uses_barriers=True,
    description="Inverted index: keyed scatter of document terms, irregular but "
    "with small hot index tiles.",
    model=_mapreduce(
        tile_kb=0.625, mem_fraction=0.38, scratchpad_fraction=0.0, divergence=2
    ),
)

PVC = BenchmarkSpec(
    name="PVC",
    suite="Mars",
    workload_class=WorkloadClass.SWS,
    apki=64,
    input_size="13MB",
    nwrp=48,
    fsmem=0.33,
    uses_barriers=True,
    description="Page-view count: hash-bucket updates with one third of shared "
    "memory used for intermediate buffers.",
    model=_mapreduce(
        tile_kb=0.625, mem_fraction=0.32, scratchpad_fraction=0.10, divergence=2,
        aggressor_factor=2.5,
    ),
)

SS = BenchmarkSpec(
    name="SS",
    suite="Mars",
    workload_class=WorkloadClass.SWS,
    apki=34,
    input_size="23MB",
    nwrp=48,
    fsmem=0.50,
    uses_barriers=True,
    description="Similarity score: pairwise document scoring; half of shared "
    "memory is used by the program, shrinking CIAO's cache space.",
    model=_mapreduce(
        tile_kb=0.625, mem_fraction=0.28, scratchpad_fraction=0.15, divergence=2,
        aggressor_factor=2.5,
    ),
)

SM = BenchmarkSpec(
    name="SM",
    suite="Mars",
    workload_class=WorkloadClass.SWS,
    apki=140,
    input_size="1MB",
    nwrp=48,
    fsmem=0.01,
    uses_barriers=True,
    description="String match: very high access rate scanning small string "
    "tiles; almost all shared memory is unused.",
    model=_mapreduce(
        tile_kb=0.625, mem_fraction=0.42, scratchpad_fraction=0.02, divergence=1,
    ),
)

WC = BenchmarkSpec(
    name="WC",
    suite="Mars",
    workload_class=WorkloadClass.SWS,
    apki=19,
    input_size="88KB",
    nwrp=48,
    fsmem=0.01,
    uses_barriers=True,
    description="Word count: light keyed accesses over a tiny input.",
    model=_mapreduce(
        tile_kb=0.625, mem_fraction=0.22, scratchpad_fraction=0.02, divergence=1,
        aggressor_factor=2.0,
    ),
)

#: All Mars benchmark specs defined by this module.
MARS_BENCHMARKS: tuple[BenchmarkSpec, ...] = (KMN, II, PVC, SS, SM, WC)
