"""Benchmark registry (the programmatic form of Table II).

Aggregates the benchmark specifications of the three suites and provides
lookup helpers used by the harness, the examples and the benches.  Backed by
the generic :class:`repro.registry.Registry`, so out-of-tree workloads can
be added without editing this module::

    from repro.workloads.registry import register_benchmark

    register_benchmark(my_spec)  # then run_benchmark(my_spec.name, ...)
"""

from __future__ import annotations

from typing import Iterable

from repro.registry import Registry
from repro.workloads.mars import MARS_BENCHMARKS
from repro.workloads.polybench import POLYBENCH_BENCHMARKS
from repro.workloads.rodinia import RODINIA_BENCHMARKS
from repro.workloads.spec import BenchmarkSpec, ModelParams, PatternKind, WorkloadClass

__all__ = [
    "BenchmarkSpec",
    "ModelParams",
    "PatternKind",
    "WorkloadClass",
    "all_benchmarks",
    "benchmark_names",
    "benchmarks_by_class",
    "benchmarks_by_suite",
    "get_benchmark",
    "register_benchmark",
    "resolve_benchmark_names",
    "unregister_benchmark",
    "MEMORY_INTENSIVE_BENCHMARKS",
    "TABLE_II_ROWS",
]

_REGISTRY: Registry = Registry("benchmark")

#: Every registered benchmark, in registration (Table II) order.
_ALL: list[BenchmarkSpec] = []


def register_benchmark(
    spec: BenchmarkSpec, *, aliases: Iterable[str] = (), replace: bool = False
) -> BenchmarkSpec:
    """Register ``spec`` for lookup by (case-insensitive) name.

    Out-of-tree benchmarks registered here are accepted everywhere a
    benchmark name is: ``run_benchmark``, sweeps, the CLI and cache keys.
    """
    if replace and spec.name in _REGISTRY:
        # Replacing in place: drop the old spec from the listing so the
        # name never appears (and sweeps never simulate it) twice.
        old = _REGISTRY.get(spec.name)
        if old in _ALL:
            _ALL.remove(old)
    _REGISTRY.register(spec.name, spec, aliases=aliases, replace=replace)
    _ALL.append(spec)
    return spec


def unregister_benchmark(name: str) -> BenchmarkSpec:
    """Remove a registered benchmark (by any alias); returns its spec."""
    spec = _REGISTRY.unregister(name)
    _ALL.remove(spec)
    return spec


#: Table II, in the paper's listing order.
for _spec in (
    POLYBENCH_BENCHMARKS[:6]          # ATAX, BICG, MVT, GESUMMV, SYR2K, SYRK
    + (MARS_BENCHMARKS[0],)           # KMN
    + (RODINIA_BENCHMARKS[0],)        # Kmeans
    + MARS_BENCHMARKS[1:]             # II, PVC, SS, SM, WC
    + POLYBENCH_BENCHMARKS[6:]        # 2DCONV, CORR
    + RODINIA_BENCHMARKS[1:]          # Gaussian, Backprop, Hotspot, Lud, NN, NW
):
    register_benchmark(_spec)

#: The seven memory-intensive workloads used in the sensitivity study
#: (Figure 11): ATAX, GESUMMV, SYR2K, SYRK, BICG, MVT, Kmeans.
MEMORY_INTENSIVE_BENCHMARKS: tuple[str, ...] = (
    "ATAX",
    "GESUMMV",
    "SYR2K",
    "SYRK",
    "BICG",
    "MVT",
    "Kmeans",
)


def all_benchmarks() -> tuple[BenchmarkSpec, ...]:
    """Every benchmark spec, in Table II order (as plotted in Figure 8a)."""
    return tuple(_ALL)


def benchmark_names() -> tuple[str, ...]:
    """Benchmark names in Table II order."""
    return tuple(spec.name for spec in _ALL)


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look a benchmark up by (case-insensitive) name."""
    return _REGISTRY.get(name)


def resolve_benchmark_names(selectors: "list[str] | tuple[str, ...]") -> list[str]:
    """Expand CLI-style benchmark selectors into concrete benchmark names.

    Each selector is a benchmark name, a suite name (``polybench``,
    ``mars``, ``rodinia``), a working-set class (``lws``, ``sws``, ``ci``),
    ``memory-intensive`` (the Figure 11 set), or ``all``.  Order follows
    Table II; duplicates are dropped while preserving first occurrence.
    """
    names: list[str] = []

    def add(more):
        for name in more:
            if name not in names:
                names.append(name)

    for selector in selectors:
        key = selector.lower()
        if key == "all":
            add(benchmark_names())
        elif key in ("memory-intensive", "memory_intensive", "mem"):
            add(MEMORY_INTENSIVE_BENCHMARKS)
        elif key in ("lws", "sws", "ci"):
            add(spec.name for spec in benchmarks_by_class(WorkloadClass[key.upper()]))
        elif key in ("polybench", "mars", "rodinia"):
            add(spec.name for spec in benchmarks_by_suite(key))
        else:
            add([get_benchmark(selector).name])
    return names


def benchmarks_by_class(workload_class: WorkloadClass) -> tuple[BenchmarkSpec, ...]:
    """All benchmarks of one working-set class."""
    return tuple(spec for spec in _ALL if spec.workload_class is workload_class)


def benchmarks_by_suite(suite: str) -> tuple[BenchmarkSpec, ...]:
    """All benchmarks of one suite (PolyBench / Mars / Rodinia)."""
    return tuple(spec for spec in _ALL if spec.suite.lower() == suite.lower())


def TABLE_II_ROWS() -> list[dict[str, object]]:
    """Table II as a list of dictionaries (used by the table bench/report)."""
    return [
        {
            "Benchmark": spec.name,
            "APKI": spec.apki,
            "Input": spec.input_size,
            "Nwrp": spec.nwrp,
            "Fsmem": f"{int(round(spec.fsmem * 100))}%",
            "Bar.": "Y" if spec.uses_barriers else "N",
            "Class": spec.workload_class.name,
            "Suite": spec.suite,
        }
        for spec in _ALL
    ]
