"""Benchmark specification dataclasses.

:class:`BenchmarkSpec` couples the facts the paper reports in Table II
(suite, APKI, input size, best static warp limit ``Nwrp``, shared-memory
fraction ``Fsmem``, barrier usage, working-set class) with the parameters of
our synthetic model of the benchmark (:class:`ModelParams`).

The model parameters are chosen per benchmark so that the *aggregate* cache
behaviour matches what the class labels imply on a 16 KB L1D shared by up to
48 warps:

* **LWS** (large working set): per-warp reuse tiles of a few KB -- a handful
  of warps fit in the L1D (hence the small ``Nwrp``), all 48 thrash even the
  combined L1D + shared-memory capacity.
* **SWS** (small working set): ~1 KB tiles -- 48 warps overflow the 16 KB
  L1D but fit comfortably once CIAO spreads them over L1D + unused shared
  memory.
* **CI** (compute intensive): few memory instructions and small tiles; TLP,
  not cache capacity, limits performance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class WorkloadClass(enum.Enum):
    """Working-set classification used throughout the evaluation."""

    LWS = "large-working-set"
    SWS = "small-working-set"
    CI = "compute-intensive"


class PatternKind(enum.Enum):
    """Top-level access-pattern archetype of a benchmark model."""

    LINEAR_ALGEBRA = "linear-algebra"     # streaming rows + hot reused tiles/vectors
    IRREGULAR = "irregular"               # index-driven divergent accesses
    MAPREDUCE = "mapreduce"               # hashed/keyed accesses + scratchpad use
    STENCIL = "stencil"                   # neighbour sweeps with moderate reuse
    TWO_PHASE = "two-phase"               # memory-intensive phase then compute phase


@dataclass(frozen=True)
class ModelParams:
    """Parameters of the synthetic per-warp instruction stream."""

    pattern: PatternKind = PatternKind.LINEAR_ALGEBRA
    #: Warp instructions per warp at scale 1.0.
    instructions_per_warp: int = 2000
    #: Fraction of instructions that are global memory accesses.
    mem_fraction: float = 0.30
    #: Per-warp reuse tile size in KiB.
    tile_kb: float = 1.0
    #: Blocks per reuse chunk (reuse distance; keep within the 8-entry VTA).
    chunk_blocks: int = 4
    #: Times each chunk is swept before moving on.
    chunk_repeats: int = 3
    #: Size of the *shared* hot data structure in KiB (the re-read vector /
    #: operand tile / centroid array all warps of the kernel keep touching).
    #: This is the data whose locality the schedulers fight over: it fits the
    #: L1D when protected and is worth protecting because every warp hits on
    #: it simultaneously.  0 disables the shared hot region.
    hot_kb: float = 0.0
    #: Fraction of memory accesses that go to the shared hot region.
    hot_fraction: float = 0.0
    #: Fraction of memory accesses that stream over a large array (no reuse).
    stream_fraction: float = 0.2
    #: Every ``aggressor_period``-th warp is an aggressor ...
    aggressor_period: int = 4
    #: ... whose tile is this many times larger (more evictions caused).
    aggressor_factor: float = 3.0
    #: Distinct blocks per irregular access (memory divergence).
    divergence: int = 1
    #: Warp instructions between CTA barriers (0 = no barriers).
    barrier_interval: int = 0
    #: Fraction of instructions that access the program-managed scratchpad.
    scratchpad_fraction: float = 0.0
    #: For TWO_PHASE: fraction of instructions in the memory-intensive phase.
    phase_split: float = 0.6
    #: For TWO_PHASE: memory fraction of the second (compute) phase.
    phase2_mem_fraction: float = 0.05


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table II plus the synthetic model of the benchmark."""

    name: str
    suite: str
    workload_class: WorkloadClass
    apki: int
    input_size: str
    nwrp: int                 # best static wavefront limit (Best-SWL profile)
    fsmem: float              # fraction of shared memory used by the program
    uses_barriers: bool
    description: str
    model: ModelParams = field(default_factory=ModelParams)

    #: Launch geometry: warps per CTA and number of CTAs (defaults give the
    #: canonical 48 resident warps per SM).
    warps_per_cta: int = 8
    num_ctas: int = 6

    def total_warps(self) -> int:
        """Warps launched per SM."""
        return self.warps_per_cta * self.num_ctas

    def shared_mem_per_cta(self, shared_capacity_bytes: int = 48 * 1024) -> int:
        """Scratchpad bytes each CTA allocates (Table II's Fsmem split evenly)."""
        total = int(self.fsmem * shared_capacity_bytes)
        if self.num_ctas == 0:
            return 0
        per_cta = total // self.num_ctas
        # Keep allocations 128-byte aligned like real CUDA allocations.
        return (per_cta // 128) * 128

    def validate(self) -> None:
        """Sanity-check the Table II facts and model parameters."""
        if self.apki < 0:
            raise ValueError("APKI cannot be negative")
        if not 0 <= self.fsmem <= 1:
            raise ValueError("Fsmem must be a fraction")
        if self.nwrp <= 0:
            raise ValueError("Nwrp must be positive")
        if self.warps_per_cta <= 0 or self.num_ctas <= 0:
            raise ValueError("launch geometry must be positive")
        if not 0 <= self.model.mem_fraction <= 1:
            raise ValueError("mem_fraction must be a fraction")
        if not 0 <= self.model.stream_fraction <= 1:
            raise ValueError("stream_fraction must be a fraction")
