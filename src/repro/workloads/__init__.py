"""Workload models for the 21 benchmarks of Table II.

The paper evaluates CUDA benchmarks from PolyBench, Mars and Rodinia on
GPGPU-Sim.  Neither the CUDA binaries nor a functional GPU exist in this
environment, so each benchmark is modelled as a *synthetic memory-access
generator* that reproduces the characteristics Table II reports (accesses
per kilo-instruction, working-set class, best static warp limit, shared
memory usage, barrier behaviour) together with the benchmark's well-known
access structure (streaming matrix rows + hot vectors for the matrix-vector
kernels, tiled reuse for the rank-k updates, irregular accesses for the
clustering and MapReduce codes, stencils for the CI workloads).

Public API:

* :func:`repro.workloads.registry.get_benchmark` /
  :func:`repro.workloads.registry.all_benchmarks` -- the Table II registry.
* :func:`repro.workloads.synthetic.build_kernel` -- turn a benchmark spec
  into a :class:`repro.gpu.cta.KernelLaunch` at a given scale.
"""

from repro.workloads.registry import (
    BenchmarkSpec,
    WorkloadClass,
    all_benchmarks,
    benchmarks_by_class,
    benchmark_names,
    get_benchmark,
    MEMORY_INTENSIVE_BENCHMARKS,
)
from repro.workloads.synthetic import build_kernel, SyntheticKernelModel

__all__ = [
    "BenchmarkSpec",
    "WorkloadClass",
    "all_benchmarks",
    "benchmarks_by_class",
    "benchmark_names",
    "get_benchmark",
    "MEMORY_INTENSIVE_BENCHMARKS",
    "build_kernel",
    "SyntheticKernelModel",
]
