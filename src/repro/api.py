"""``repro.api`` — the typed, backend-pluggable simulation API.

This module defines the *one* canonical description of a simulation job and
the seam through which execution engines plug in:

* :class:`SimulationRequest` — benchmark + scheduler + :class:`RunConfig`
  (+ optional backend selection).  Every path that used to re-describe "one
  simulation" in its own shape (``run_benchmark``'s kwargs, the sweep
  engine's jobs, the result cache's key dicts, the CLI) now builds or
  consumes this dataclass.  ``canonicalize()`` resolves aliases so two
  spellings of the same job can never diverge; ``cache_key()`` derives the
  content-addressed result-cache key; ``to_dict()`` / ``from_dict()`` give
  it a stable, versioned, JSON-safe wire form (:data:`REQUEST_SCHEMA`).
* :func:`execute` — run a request on a backend.  Backends implement the
  :class:`repro.backends.Backend` protocol (``execute(request) ->
  SimulationResult``) and are selected per request, per call, or through the
  ``REPRO_BACKEND`` environment variable.  ``"reference"`` is the original
  serialized-SM engine; ``"lockstep"`` advances all SMs cycle-by-cycle
  against the shared L2/DRAM (see :mod:`repro.gpu.lockstep`).
* a serialization codec (:func:`encode_value` / :func:`decode_value`) that
  round-trips every registered configuration / statistics dataclass through
  JSON-safe primitives.  :class:`repro.gpu.gpu.SimulationResult` uses the
  same codec (:data:`RESULT_SCHEMA`), so cache entries and CLI JSON share
  one schema.

The convenience front end :func:`repro.harness.runner.run_benchmark` remains
supported and is now a thin shim over this module.
"""

from __future__ import annotations

import dataclasses
import enum
import re
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Sequence, Union

from repro.core.config import CIAOParameters
from repro.gpu.config import GPUConfig
from repro.sched.registry import canonical_scheduler_name
from repro.workloads.registry import get_benchmark
from repro.workloads.spec import BenchmarkSpec

#: Version of the :meth:`SimulationRequest.to_dict` wire format.  Bump when
#: the request schema changes incompatibly; ``from_dict`` rejects mismatches.
REQUEST_SCHEMA = 1

#: Version of the :meth:`~repro.gpu.gpu.SimulationResult.to_dict` wire
#: format (shared by the result cache and the CLI's JSON output).
RESULT_SCHEMA = 1

#: Version of the :meth:`MultiTenantRequest.to_dict` wire format.
MULTI_TENANT_SCHEMA = 1

#: Version of the :meth:`JobRecord.to_dict` wire format (the serving
#: layer's job-lifecycle envelope; see :mod:`repro.serve`).
JOB_SCHEMA = 1


# ---------------------------------------------------------------------------
# Serialization codec: registered dataclasses/enums <-> JSON-safe primitives
# ---------------------------------------------------------------------------
_SERIALIZABLE: dict[str, type] = {}


def register_serializable(cls: type) -> type:
    """Register a dataclass or enum for :func:`encode_value` round-trips.

    Usable as a decorator.  Registration is by class name, which therefore
    must be unique across the package (it already is — the cache's
    ``canonicalize`` relies on the same property).
    """
    name = cls.__name__
    existing = _SERIALIZABLE.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"serializable name collision: {name!r}")
    _SERIALIZABLE[name] = cls
    return cls


def encode_value(value: Any) -> Any:
    """Reduce ``value`` to JSON-safe primitives, reversibly.

    Registered dataclasses become ``{"__dc__": name, "fields": {...}}``,
    enums ``{"__enum__": name, "name": member}``, tuples
    ``{"__tuple__": [...]}`` and mappings with non-string keys
    ``{"__map__": [[k, v], ...]}``; everything composes recursively.
    ``decode_value`` restores an equal object graph.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if _SERIALIZABLE.get(name) is not type(value):
            raise TypeError(f"{name} is not registered with register_serializable()")
        return {
            "__dc__": name,
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        name = type(value).__name__
        if _SERIALIZABLE.get(name) is not type(value):
            raise TypeError(f"{name} is not registered with register_serializable()")
        return {"__enum__": name, "name": value.name}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, Mapping):
        if all(isinstance(k, str) and not k.startswith("__") for k in value):
            return {k: encode_value(v) for k, v in value.items()}
        return {"__map__": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__}: {value!r}")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if "__dc__" in value:
            cls = _SERIALIZABLE.get(value["__dc__"])
            if cls is None:
                raise ValueError(f"unknown serialized type {value['__dc__']!r}")
            fields = {k: decode_value(v) for k, v in value["fields"].items()}
            return cls(**fields)
        if "__enum__" in value:
            cls = _SERIALIZABLE.get(value["__enum__"])
            if cls is None:
                raise ValueError(f"unknown serialized enum {value['__enum__']!r}")
            return cls[value["name"]]
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__map__" in value:
            return {decode_value(k): decode_value(v) for k, v in value["__map__"]}
        return {k: decode_value(v) for k, v in value.items()}
    return value


def check_schema(payload: Mapping[str, Any], kind: str, schema: int) -> None:
    """Validate the envelope of a versioned ``to_dict`` payload."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"{kind} payload must be a mapping, got {type(payload).__name__}")
    if payload.get("kind") != kind:
        raise ValueError(f"expected a {kind} payload, got kind={payload.get('kind')!r}")
    if payload.get("schema") != schema:
        raise ValueError(
            f"unsupported {kind} schema {payload.get('schema')!r} (supported: {schema})"
        )


# ---------------------------------------------------------------------------
# RunConfig (moved here from repro.harness.runner, which re-exports it)
# ---------------------------------------------------------------------------
@register_serializable
@dataclass
class RunConfig:
    """Sizing and configuration of one simulation run."""

    #: Scales the per-warp instruction count of the workload models
    #: (1.0 reproduces the default ~2000-2600 instructions per warp).
    scale: float = 1.0
    #: Workload RNG seed (streams are deterministic given the seed).
    seed: int = 1
    #: Optional launch-geometry overrides (defaults come from the spec).
    num_ctas: Optional[int] = None
    warps_per_cta: Optional[int] = None
    #: Machine configuration (Table I baseline when omitted).
    gpu_config: GPUConfig = field(default_factory=GPUConfig.gtx480)
    #: Fig. 12b knob: multiply DRAM bandwidth (2.0 = the "2X" variants).
    dram_bandwidth_scale: float = 1.0
    #: CIAO thresholds / epochs (paper defaults when omitted).
    ciao_params: Optional[CIAOParameters] = None
    #: Hard cycle budget per SM (guards against pathological runs).
    max_cycles: Optional[int] = None


def scheduler_kwargs_for(
    scheduler: str, spec: BenchmarkSpec, run_config: RunConfig
) -> dict:
    """Per-benchmark scheduler constructor arguments (profiled knobs)."""
    key = canonical_scheduler_name(scheduler)
    if key == "best-swl":
        return {"warp_limit": spec.nwrp}
    if key == "statpcal":
        # Token holders keep L1D allocation rights; the profiled limit is the
        # natural token count (Li et al. size tokens like a wavefront limit).
        return {"token_count": max(2, spec.nwrp)}
    if key.startswith("ciao"):
        params = run_config.ciao_params or CIAOParameters.paper_defaults()
        return {"params": params}
    return {}


# ---------------------------------------------------------------------------
# The canonical job descriptor
# ---------------------------------------------------------------------------
@register_serializable
@dataclass(frozen=True)
class SimulationRequest:
    """One fully-specified simulation: benchmark x scheduler x config.

    This is the single job descriptor shared by :func:`run_benchmark`, the
    parallel sweep engine (where it was historically called ``SweepJob`` —
    that name remains as an alias), the result cache's key derivation and
    the CLI.
    """

    benchmark: Union[str, BenchmarkSpec]
    scheduler: str = "gto"
    run_config: RunConfig = field(default_factory=RunConfig)
    #: Free-form label callers use to route results (e.g. a Figure 12
    #: variant name or a sensitivity-sweep parameter value).
    tag: Optional[str] = None
    #: Execution engine name (see :mod:`repro.backends`).  ``None`` defers
    #: to ``REPRO_BACKEND`` or the default ``"reference"`` engine.
    backend: Optional[str] = None

    # -- identity ------------------------------------------------------
    @property
    def benchmark_name(self) -> str:
        return (
            self.benchmark.name
            if isinstance(self.benchmark, BenchmarkSpec)
            else str(self.benchmark)
        )

    def spec(self) -> BenchmarkSpec:
        """The resolved benchmark specification."""
        if isinstance(self.benchmark, BenchmarkSpec):
            return self.benchmark
        return get_benchmark(self.benchmark)

    def scheduler_kwargs(self) -> dict:
        """Constructor kwargs the scheduler receives for this request."""
        return scheduler_kwargs_for(self.scheduler, self.spec(), self.run_config)

    def resolved_backend(self) -> str:
        """The concrete engine name (environment default applied)."""
        from repro.backends import resolve_backend_name

        return resolve_backend_name(self.backend)

    def canonicalize(self) -> "SimulationRequest":
        """Resolve every alias so equal jobs compare equal.

        The benchmark name takes the registry's canonical spelling, the
        scheduler its canonical hyphenated name, and the backend its
        concrete resolved name (environment default applied).  Unknown
        names raise ``KeyError`` here rather than mid-simulation.
        """
        from repro.backends import resolve_backend_name

        benchmark = (
            self.benchmark
            if isinstance(self.benchmark, BenchmarkSpec)
            else self.spec().name
        )
        return replace(
            self,
            benchmark=benchmark,
            scheduler=canonical_scheduler_name(self.scheduler),
            backend=resolve_backend_name(self.backend),
        )

    def cache_key(self, *, code_version: Optional[str] = None) -> str:
        """Content hash identifying this job (see :mod:`repro.harness.cache`)."""
        from repro.backends import resolve_backend_name
        from repro.harness.cache import job_key

        spec = self.spec()
        scheduler = canonical_scheduler_name(self.scheduler)
        kwargs = scheduler_kwargs_for(scheduler, spec, self.run_config)
        return job_key(
            spec,
            scheduler,
            kwargs,
            self.run_config,
            backend=resolve_backend_name(self.backend),
            code_version=code_version,
        )

    # -- wire format ---------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-safe form; ``from_dict`` restores an equal request."""
        return {
            "schema": REQUEST_SCHEMA,
            "kind": "SimulationRequest",
            "data": encode_value(self),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationRequest":
        """Inverse of :meth:`to_dict` (raises ``ValueError`` on schema drift)."""
        check_schema(payload, "SimulationRequest", REQUEST_SCHEMA)
        value = decode_value(payload["data"])
        if not isinstance(value, cls):
            raise ValueError(f"payload decoded to {type(value).__name__}, not {cls.__name__}")
        return value


# ---------------------------------------------------------------------------
# Multi-tenant (co-located) job descriptors
# ---------------------------------------------------------------------------
#: Tenant labels appear in CLI specs (``name=BENCH/SCHED:SMS``), cache keys
#: and result dictionaries, so keep them to a safe identifier alphabet.
_TENANT_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.+-]*$")


@register_serializable
@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a co-located launch: kernel x scheduler x SM partition.

    ``sm_ids`` are the machine SM slots this tenant owns; across a
    :class:`MultiTenantRequest` the partitions must be disjoint and cover
    the machine exactly.

    ``address_space`` is the tenant's address-space colour: tenants with the
    same colour share virtual addresses (colour 0 is the kernel's natural
    address layout — required for bit-exact parity with single-kernel
    launches); distinct colours shift the tenant's global addresses into
    private, never-aliasing ranges, modelling separate processes whose
    working sets only interact through cache capacity and bandwidth (see
    :func:`repro.workloads.synthetic.isolate_address_space`).

    ``launch_cycle`` staggers the tenant's kernel launch: its SMs sit idle
    until the global clock reaches that cycle, then begin issuing — the
    co-location analogue of a kernel arriving mid-run.  Cycle 0 (the
    default) is the simultaneous-launch path, bit-identical to requests
    that predate the field.
    """

    name: str
    benchmark: Union[str, BenchmarkSpec]
    scheduler: str = "gto"
    sm_ids: tuple[int, ...] = ()
    address_space: int = 0
    launch_cycle: int = 0

    @property
    def benchmark_name(self) -> str:
        return (
            self.benchmark.name
            if isinstance(self.benchmark, BenchmarkSpec)
            else str(self.benchmark)
        )

    def spec(self) -> BenchmarkSpec:
        """The resolved benchmark specification."""
        if isinstance(self.benchmark, BenchmarkSpec):
            return self.benchmark
        return get_benchmark(self.benchmark)

    def scheduler_kwargs(self, run_config: RunConfig) -> dict:
        """Constructor kwargs this tenant's scheduler receives."""
        return scheduler_kwargs_for(self.scheduler, self.spec(), run_config)

    def validate(self) -> None:
        """Check the tenant in isolation (partition checks happen above)."""
        if not _TENANT_NAME_RE.match(self.name or ""):
            raise ValueError(
                f"invalid tenant name {self.name!r} (use letters, digits, "
                "and ._+- after a leading alphanumeric)"
            )
        if not self.sm_ids:
            raise ValueError(f"tenant {self.name!r} owns no SMs")
        if any(not isinstance(i, int) or i < 0 for i in self.sm_ids):
            raise ValueError(f"tenant {self.name!r} has invalid SM ids {self.sm_ids}")
        if len(set(self.sm_ids)) != len(self.sm_ids):
            raise ValueError(f"tenant {self.name!r} lists an SM id twice")
        if not isinstance(self.address_space, int) or self.address_space < 0:
            raise ValueError(
                f"tenant {self.name!r} has invalid address space "
                f"{self.address_space!r} (need a small non-negative int)"
            )
        if not isinstance(self.launch_cycle, int) or self.launch_cycle < 0:
            raise ValueError(
                f"tenant {self.name!r} has invalid launch cycle "
                f"{self.launch_cycle!r} (need a non-negative int)"
            )


@register_serializable
@dataclass(frozen=True)
class MultiTenantRequest:
    """One co-located simulation: several tenants partitioning one machine.

    The tenants' ``sm_ids`` must be disjoint and, when ``total_sms`` is
    unset, partition ``range(machine_sms())`` exactly (no gaps — a typo'd
    partition fails loudly).  Setting ``total_sms`` explicitly sizes the
    machine and *allows* unowned SMs, which simply sit idle; this is how a
    tenant runs "alone on the machine" for interference baselines
    (:meth:`isolated_request`).  ``run_config`` is shared by every tenant —
    its ``gpu_config.num_sms`` is *derived from the partition* at
    materialization time, everything else (scale, seed, cache geometry,
    DRAM scaling, cycle budget) applies machine-wide.

    Unlike :class:`SimulationRequest`, an unset ``backend`` defaults to
    ``"lockstep"`` rather than the ``REPRO_BACKEND`` environment value:
    co-location is structurally a lock-step concept — the serialized
    reference engine cannot interleave kernels in time — so the environment
    default (usually ``"reference"``) does not apply.
    """

    tenants: tuple[TenantSpec, ...] = ()
    run_config: RunConfig = field(default_factory=RunConfig)
    #: Free-form label callers use to route results (e.g. a scenario name).
    tag: Optional[str] = None
    #: Execution engine; ``None`` means ``"lockstep"`` (see class docstring).
    backend: Optional[str] = None
    #: Explicit machine size.  ``None`` derives it from the partition (which
    #: must then be gap-free); an explicit value allows idle SMs and is part
    #: of the cache key — the machine's L2/DRAM share scales with it.
    total_sms: Optional[int] = None

    # -- identity ------------------------------------------------------
    def machine_sms(self) -> int:
        """SM count of the shared machine (explicit or derived)."""
        if self.total_sms is not None:
            return self.total_sms
        return max((max(t.sm_ids) for t in self.tenants if t.sm_ids), default=0) + 1

    @property
    def benchmark_name(self) -> str:
        """Display name: the tenants' benchmarks joined (sweep-table key)."""
        return "+".join(t.benchmark_name for t in self.tenants)

    @property
    def scheduler(self) -> str:
        """Display name: the tenants' schedulers joined (sweep-table key)."""
        return "+".join(t.scheduler for t in self.tenants)

    def tenant(self, name: str) -> TenantSpec:
        """The tenant named ``name`` (raises ``KeyError`` when absent)."""
        for t in self.tenants:
            if t.name == name:
                return t
        raise KeyError(f"unknown tenant {name!r}")

    def validate(self) -> None:
        """Check tenant names and the SM partition; raises ``ValueError``."""
        if not self.tenants:
            raise ValueError("a multi-tenant request needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        claimed: dict[int, str] = {}
        for t in self.tenants:
            t.validate()
            for sm_id in t.sm_ids:
                if sm_id in claimed:
                    raise ValueError(
                        f"SM {sm_id} assigned to both {claimed[sm_id]!r} and {t.name!r}"
                    )
                claimed[sm_id] = t.name
        machine = self.machine_sms()
        if self.total_sms is not None and self.total_sms <= 0:
            raise ValueError("total_sms must be positive")
        out_of_range = sorted(i for i in claimed if i >= machine)
        if out_of_range:
            raise ValueError(
                f"SM ids {out_of_range} lie outside the {machine}-SM machine"
            )
        if self.total_sms is None and set(claimed) != set(range(machine)):
            missing = sorted(set(range(machine)) - set(claimed))
            raise ValueError(
                f"tenant partitions must cover SMs 0..{machine - 1} "
                f"contiguously (missing {missing}); set total_sms explicitly "
                "to leave SMs idle"
            )

    def resolved_backend(self) -> str:
        """The concrete engine name (``"lockstep"`` when unset)."""
        from repro.backends import resolve_backend_name

        if self.backend is None:
            return "lockstep"
        return resolve_backend_name(self.backend)

    def canonicalize(self) -> "MultiTenantRequest":
        """Resolve aliases in every tenant and validate the partition."""
        tenants = tuple(
            replace(
                t,
                benchmark=(
                    t.benchmark if isinstance(t.benchmark, BenchmarkSpec) else t.spec().name
                ),
                scheduler=canonical_scheduler_name(t.scheduler),
                sm_ids=tuple(sorted(t.sm_ids)),
            )
            for t in self.tenants
        )
        canonical = replace(
            self, tenants=tenants, backend=self.resolved_backend()
        )
        canonical.validate()
        return canonical

    def cache_key(self, *, code_version: Optional[str] = None) -> str:
        """Content hash identifying this job (partition-sensitive)."""
        from repro.harness.cache import multi_tenant_job_key

        canonical = self.canonicalize()
        tenant_payloads = [
            {
                "name": t.name,
                "benchmark": t.spec(),
                "scheduler": t.scheduler,
                "scheduler_kwargs": t.scheduler_kwargs(canonical.run_config),
                "sm_ids": list(t.sm_ids),
                "address_space": t.address_space,
                "launch_cycle": t.launch_cycle,
            }
            for t in canonical.tenants
        ]
        tenant_payloads.append({"machine_sms": canonical.machine_sms()})
        return multi_tenant_job_key(
            tenant_payloads,
            canonical.run_config,
            backend=canonical.backend,
            code_version=code_version,
        )

    def isolated_request(self, name: str) -> "MultiTenantRequest":
        """The tenant's isolated baseline: alone on the *same* machine.

        A single-tenant request on a machine of the same ``machine_sms()``
        size — the tenant keeps its SM partition, every other SM sits idle.
        Hardware (L2 share, DRAM bandwidth) is identical to the co-located
        run, so co-located cycles / isolated cycles is pure inter-tenant
        contention (see :func:`repro.analysis.metrics.tenant_slowdowns`).
        """
        tenant = self.tenant(name)
        return MultiTenantRequest(
            tenants=(tenant,),
            run_config=self.run_config,
            tag=f"isolated:{name}",
            backend=self.resolved_backend(),
            total_sms=self.machine_sms(),
        )

    # -- wire format ---------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-safe form; ``from_dict`` restores an equal request."""
        payload = {
            "schema": MULTI_TENANT_SCHEMA,
            "kind": "MultiTenantRequest",
            "data": encode_value(self),
        }
        for tenant in payload["data"]["fields"]["tenants"]["__tuple__"]:
            # Simultaneous launches predate the stagger field; omitting the
            # zero default keeps the schema-1 wire form (golden fixtures,
            # existing cache entries) byte-identical, and ``from_dict``
            # restores the default on decode.
            if tenant["fields"].get("launch_cycle") == 0:
                tenant["fields"].pop("launch_cycle")
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MultiTenantRequest":
        """Inverse of :meth:`to_dict` (raises ``ValueError`` on schema drift)."""
        check_schema(payload, "MultiTenantRequest", MULTI_TENANT_SCHEMA)
        value = decode_value(payload["data"])
        if not isinstance(value, cls):
            raise ValueError(f"payload decoded to {type(value).__name__}, not {cls.__name__}")
        return value


#: Either job descriptor the execution engines and the sweep engine accept.
AnyRequest = Union[SimulationRequest, MultiTenantRequest]

#: Version of the :func:`encode_request_batch` wire form (the unit of work
#: a coordinator ships to a ``repro worker`` process).
BATCH_SCHEMA = 1

def result_digest(payload: Any) -> str:
    """Blake2b content digest of a result payload's canonical JSON form.

    Re-exported integrity primitive (the import is deferred because
    ``repro.harness`` imports this module at package init): the digest
    stamped onto cache envelopes, worker outcome rows and serve's
    ``X-Repro-Digest`` header — one definition, verified identically at
    every hop.  See :func:`repro.harness.integrity.result_digest`.
    """
    from repro.harness.integrity import result_digest as _digest

    return _digest(payload)


def decode_request(payload: Any) -> AnyRequest:
    """Dispatch a request wire-form payload to the matching ``from_dict``.

    The single decoder shared by the serving layer (``POST /simulate``)
    and the distributed worker (``POST /batch``), so the two front ends can
    never disagree on what a request payload means.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(
            f"request payload must be an object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind == "SimulationRequest":
        return SimulationRequest.from_dict(payload)
    if kind == "MultiTenantRequest":
        return MultiTenantRequest.from_dict(payload)
    raise ValueError(f"unsupported request kind {kind!r}")


def encode_request_batch(requests: Sequence[AnyRequest]) -> dict:
    """Versioned JSON-safe form of a request list (order-preserving).

    The batch envelope a sweep coordinator POSTs to ``repro worker``; each
    element is the request's own versioned wire form, so a batch of one is
    exactly one ``to_dict()`` payload inside a list.
    """
    return {
        "schema": BATCH_SCHEMA,
        "kind": "RequestBatch",
        "requests": [request.to_dict() for request in requests],
    }


def decode_request_batch(payload: Mapping[str, Any]) -> list[AnyRequest]:
    """Inverse of :func:`encode_request_batch` (``ValueError`` on drift)."""
    check_schema(payload, "RequestBatch", BATCH_SCHEMA)
    requests = payload.get("requests")
    if not isinstance(requests, list):
        raise ValueError("RequestBatch payload carries no request list")
    return [decode_request(entry) for entry in requests]


# ---------------------------------------------------------------------------
# Job lifecycle (the serving layer's view of one submitted request)
# ---------------------------------------------------------------------------
@register_serializable
class JobState(enum.Enum):
    """Lifecycle states of a served simulation job.

    Jobs move strictly forward: ``QUEUED`` → ``RUNNING`` → ``DONE`` /
    ``FAILED``.  Requests answered without simulating (cache hits, requests
    coalesced onto an identical in-flight job) jump straight from ``QUEUED``
    to their terminal state — they were never dispatched to an engine.
    """

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


#: Legal lifecycle transitions (see :meth:`JobRecord.advance`).
_JOB_TRANSITIONS: dict[JobState, tuple[JobState, ...]] = {
    JobState.QUEUED: (JobState.RUNNING, JobState.DONE, JobState.FAILED),
    JobState.RUNNING: (JobState.DONE, JobState.FAILED),
    JobState.DONE: (),
    JobState.FAILED: (),
}


@register_serializable
@dataclass
class JobRecord:
    """One submitted request's lifecycle record inside the serving layer.

    Created when :mod:`repro.serve` accepts a request and kept (bounded)
    for the ``/jobs`` endpoints: which request this was (its
    content-addressed ``cache_key`` plus human-readable identity), how it
    progressed (``state``), and how the response was ultimately produced
    (``source``: served from the result cache, coalesced onto an identical
    in-flight job, or executed by an engine).  ``to_dict`` / ``from_dict``
    give it the same versioned JSON wire form as the request and result
    types (:data:`JOB_SCHEMA`).
    """

    job_id: str
    cache_key: str
    #: Request kind: ``"SimulationRequest"`` or ``"MultiTenantRequest"``.
    request_kind: str
    benchmark: str
    scheduler: str
    backend: str
    state: JobState = JobState.QUEUED
    #: How the response was produced: ``"cache"``, ``"coalesced"`` or
    #: ``"executed"`` (``None`` while the job is still pending).
    source: Optional[str] = None
    #: Terminal error message (``FAILED`` jobs only).
    error: Optional[str] = None
    #: Unix timestamps (0.0 when unset — records are wall-clock stamped by
    #: the service, not by this dataclass).
    submitted_at: float = 0.0
    finished_at: float = 0.0

    @classmethod
    def for_request(
        cls,
        request: AnyRequest,
        *,
        job_id: str,
        cache_key: str,
        submitted_at: float = 0.0,
    ) -> "JobRecord":
        """A fresh ``QUEUED`` record describing ``request``."""
        try:
            backend = request.resolved_backend()
        except KeyError:
            backend = str(request.backend)
        return cls(
            job_id=job_id,
            cache_key=cache_key,
            request_kind=type(request).__name__,
            benchmark=request.benchmark_name,
            scheduler=request.scheduler,
            backend=backend,
            submitted_at=submitted_at,
        )

    def advance(
        self,
        state: JobState,
        *,
        source: Optional[str] = None,
        error: Optional[str] = None,
        finished_at: float = 0.0,
    ) -> None:
        """Move to ``state``, rejecting illegal lifecycle transitions."""
        if state not in _JOB_TRANSITIONS[self.state]:
            raise ValueError(
                f"illegal job transition {self.state.value} -> {state.value} "
                f"(job {self.job_id})"
            )
        self.state = state
        if source is not None:
            self.source = source
        if error is not None:
            self.error = error
        if finished_at:
            self.finished_at = finished_at

    # -- wire format ---------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-safe form; :meth:`from_dict` restores an equal record."""
        return {
            "schema": JOB_SCHEMA,
            "kind": "JobRecord",
            "data": encode_value(self),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobRecord":
        """Inverse of :meth:`to_dict` (raises ``ValueError`` on schema drift)."""
        check_schema(payload, "JobRecord", JOB_SCHEMA)
        value = decode_value(payload["data"])
        if not isinstance(value, cls):
            raise ValueError(f"payload decoded to {type(value).__name__}, not {cls.__name__}")
        return value


def execute(request: AnyRequest):
    """Execute ``request`` on its backend and return the ``SimulationResult``.

    For a :class:`SimulationRequest` the backend is ``request.backend``, or —
    when that is ``None`` — the ``REPRO_BACKEND`` environment variable,
    falling back to ``"reference"``.  A :class:`MultiTenantRequest` defaults
    to ``"lockstep"`` instead (see its docstring).
    """
    from repro.backends import get_backend

    return get_backend(request.resolved_backend()).execute(request)


class BatchExecutionError(RuntimeError):
    """One request of a :func:`run_batch` call failed; carries the request.

    The message names the request's content-addressed ``cache_key()`` and
    resolved backend so service-side failures (`repro serve` logs, CI
    output) are attributable to one exact job without the request object in
    hand.  Both fields degrade gracefully: the very error being reported may
    be an unknown benchmark or backend, in which case they are unavailable.
    """

    def __init__(self, request: AnyRequest, cause: BaseException) -> None:
        try:
            backend = request.resolved_backend()
        except Exception:
            backend = request.backend or "?"
        try:
            cache_key = request.cache_key()
        except Exception:
            cache_key = "unavailable"
        super().__init__(
            f"batch request failed: benchmark={request.benchmark_name!r} "
            f"scheduler={request.scheduler!r} backend={backend!r} "
            f"cache_key={cache_key} ({type(cause).__name__}: {cause})"
        )
        self.request = request


def run_batch(requests, *, backend: Optional[str] = None, cache=None,
              on_result=None):
    """Execute ``requests`` and return their results in submission order.

    The batch counterpart of :func:`execute`: requests are grouped by
    resolved engine and each group is handed to the backend in **one call**
    (``Backend.execute_batch`` when the engine implements it, a plain
    per-request loop otherwise), so engines that intern per-kernel state —
    the ``vector`` backend's extracted traces — pay setup once per kernel
    instead of once per request.  Results are equal to
    ``[execute(r) for r in requests]`` request for request, whatever the
    grouping; :mod:`repro.harness.parallel` routes its in-process path here.

    ``backend`` fills in the engine for requests that left theirs ``None``
    (multi-tenant requests keep their ``lockstep`` default).  ``cache`` is
    an optional :class:`repro.harness.cache.ResultCache`: each request keeps
    its own content-addressed key — hits are returned without simulating and
    interleave freely with executed requests, misses are written back *as
    each result completes*, so a failure later in the batch never discards
    already-simulated work.  (With a cache attached, requests therefore run
    through the shared engine instance one at a time — per-kernel interning
    still amortises — and ``execute_batch`` is used on the cache-less path.)

    ``on_result`` is an optional ``(index, request, result)`` callback
    invoked as each result lands (cache hits included) — the hook sweep
    checkpointing (:mod:`repro.harness.manifest`) uses to record progress
    incrementally, so a failure mid-batch leaves a manifest that reflects
    exactly what completed.

    Failures raise :class:`BatchExecutionError` naming the offending
    request.
    """
    from repro.backends import get_backend

    filled: list[AnyRequest] = []
    for request in requests:
        if (
            backend is not None
            and request.backend is None
            and not isinstance(request, MultiTenantRequest)
        ):
            request = replace(request, backend=backend)
        filled.append(request)
    results: list[Any] = [None] * len(filled)
    pending_by_engine: dict[str, list[tuple[int, AnyRequest, Optional[str]]]] = {}
    for index, request in enumerate(filled):
        key: Optional[str] = None
        if cache is not None:
            try:
                key = request.cache_key()
            except Exception as exc:
                raise BatchExecutionError(request, exc) from exc
            hit = _decode_cached_result(cache.get(key))
            if hit is not None:
                results[index] = hit
                if on_result is not None:
                    on_result(index, request, hit)
                continue
        try:
            engine_name = request.resolved_backend()
        except KeyError as exc:
            raise BatchExecutionError(request, exc) from exc
        pending_by_engine.setdefault(engine_name, []).append(
            (index, request, key)
        )
    for engine_name, group in pending_by_engine.items():
        engine = get_backend(engine_name)
        group_requests = [request for _, request, _ in group]
        execute_batch = getattr(engine, "execute_batch", None)
        if execute_batch is not None and cache is None:
            try:
                outcomes = list(execute_batch(group_requests))
            except BatchExecutionError:
                raise
            except Exception as exc:
                # The engine gave no index for the failure.  Engines are
                # deterministic, so replay per request to name the actual
                # offender before giving up on attribution.
                for request in group_requests:
                    try:
                        engine.execute(request)
                    except Exception as inner:
                        raise BatchExecutionError(request, inner) from inner
                # Every request succeeds individually: the failure was
                # batch-level (backend batching bug, resource exhaustion) —
                # do not pin it on an innocent request.
                raise RuntimeError(
                    f"backend {engine_name!r} failed executing a batch of "
                    f"{len(group_requests)} requests although each succeeds "
                    f"individually ({type(exc).__name__}: {exc})"
                ) from exc
            if len(outcomes) != len(group_requests):
                raise RuntimeError(
                    f"backend {engine_name!r} returned {len(outcomes)} results "
                    f"for {len(group_requests)} requests"
                )
            for (index, request, key), outcome in zip(group, outcomes):
                results[index] = outcome
                if on_result is not None:
                    on_result(index, request, outcome)
        else:
            # One shared engine instance per group (per-kernel setup still
            # amortises); results — and cache entries — land one by one, so
            # a failure mid-batch keeps everything completed so far.
            for index, request, key in group:
                try:
                    outcome = engine.execute(request)
                except Exception as exc:
                    raise BatchExecutionError(request, exc) from exc
                results[index] = outcome
                if key is not None:
                    cache.put(key, outcome.to_dict())
                if on_result is not None:
                    on_result(index, request, outcome)
    return results


def _decode_cached_result(payload: Any):
    """Reconstruct a cached result; ``None`` (treated as a miss) on drift."""
    from repro.gpu.gpu import SimulationResult

    if isinstance(payload, SimulationResult):  # legacy pre-schema entry
        return payload
    if isinstance(payload, Mapping):
        try:
            return SimulationResult.from_dict(payload)
        except (ValueError, KeyError, TypeError):
            return None
    return None


# ---------------------------------------------------------------------------
# Codec registrations for the configuration / statistics object graph
# ---------------------------------------------------------------------------
def _register_known_types() -> None:
    from repro.gpu.gpu import SimulationResult
    from repro.gpu.stats import SMStats, StallBreakdown, TenantStats, TimeSeries
    from repro.mem.cache import CacheConfig, WritePolicy
    from repro.mem.dram import DRAMConfig
    from repro.mem.interconnect import InterconnectConfig
    from repro.mem.tag_array import ReplacementPolicy
    from repro.mem.victim_tag_array import VTAConfig
    from repro.workloads.spec import ModelParams, PatternKind, WorkloadClass

    for cls in (
        GPUConfig,
        CacheConfig,
        WritePolicy,
        ReplacementPolicy,
        DRAMConfig,
        InterconnectConfig,
        VTAConfig,
        CIAOParameters,
        BenchmarkSpec,
        ModelParams,
        PatternKind,
        WorkloadClass,
        SMStats,
        StallBreakdown,
        TenantStats,
        TimeSeries,
        SimulationResult,
    ):
        register_serializable(cls)


_register_known_types()
