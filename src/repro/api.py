"""``repro.api`` — the typed, backend-pluggable simulation API.

This module defines the *one* canonical description of a simulation job and
the seam through which execution engines plug in:

* :class:`SimulationRequest` — benchmark + scheduler + :class:`RunConfig`
  (+ optional backend selection).  Every path that used to re-describe "one
  simulation" in its own shape (``run_benchmark``'s kwargs, the sweep
  engine's jobs, the result cache's key dicts, the CLI) now builds or
  consumes this dataclass.  ``canonicalize()`` resolves aliases so two
  spellings of the same job can never diverge; ``cache_key()`` derives the
  content-addressed result-cache key; ``to_dict()`` / ``from_dict()`` give
  it a stable, versioned, JSON-safe wire form (:data:`REQUEST_SCHEMA`).
* :func:`execute` — run a request on a backend.  Backends implement the
  :class:`repro.backends.Backend` protocol (``execute(request) ->
  SimulationResult``) and are selected per request, per call, or through the
  ``REPRO_BACKEND`` environment variable.  ``"reference"`` is the original
  serialized-SM engine; ``"lockstep"`` advances all SMs cycle-by-cycle
  against the shared L2/DRAM (see :mod:`repro.gpu.lockstep`).
* a serialization codec (:func:`encode_value` / :func:`decode_value`) that
  round-trips every registered configuration / statistics dataclass through
  JSON-safe primitives.  :class:`repro.gpu.gpu.SimulationResult` uses the
  same codec (:data:`RESULT_SCHEMA`), so cache entries and CLI JSON share
  one schema.

The convenience front end :func:`repro.harness.runner.run_benchmark` remains
supported and is now a thin shim over this module.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Union

from repro.core.config import CIAOParameters
from repro.gpu.config import GPUConfig
from repro.sched.registry import canonical_scheduler_name
from repro.workloads.registry import get_benchmark
from repro.workloads.spec import BenchmarkSpec

#: Version of the :meth:`SimulationRequest.to_dict` wire format.  Bump when
#: the request schema changes incompatibly; ``from_dict`` rejects mismatches.
REQUEST_SCHEMA = 1

#: Version of the :meth:`~repro.gpu.gpu.SimulationResult.to_dict` wire
#: format (shared by the result cache and the CLI's JSON output).
RESULT_SCHEMA = 1


# ---------------------------------------------------------------------------
# Serialization codec: registered dataclasses/enums <-> JSON-safe primitives
# ---------------------------------------------------------------------------
_SERIALIZABLE: dict[str, type] = {}


def register_serializable(cls: type) -> type:
    """Register a dataclass or enum for :func:`encode_value` round-trips.

    Usable as a decorator.  Registration is by class name, which therefore
    must be unique across the package (it already is — the cache's
    ``canonicalize`` relies on the same property).
    """
    name = cls.__name__
    existing = _SERIALIZABLE.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(f"serializable name collision: {name!r}")
    _SERIALIZABLE[name] = cls
    return cls


def encode_value(value: Any) -> Any:
    """Reduce ``value`` to JSON-safe primitives, reversibly.

    Registered dataclasses become ``{"__dc__": name, "fields": {...}}``,
    enums ``{"__enum__": name, "name": member}``, tuples
    ``{"__tuple__": [...]}`` and mappings with non-string keys
    ``{"__map__": [[k, v], ...]}``; everything composes recursively.
    ``decode_value`` restores an equal object graph.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        if _SERIALIZABLE.get(name) is not type(value):
            raise TypeError(f"{name} is not registered with register_serializable()")
        return {
            "__dc__": name,
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, enum.Enum):
        name = type(value).__name__
        if _SERIALIZABLE.get(name) is not type(value):
            raise TypeError(f"{name} is not registered with register_serializable()")
        return {"__enum__": name, "name": value.name}
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, Mapping):
        if all(isinstance(k, str) and not k.startswith("__") for k in value):
            return {k: encode_value(v) for k, v in value.items()}
        return {"__map__": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode {type(value).__name__}: {value!r}")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if "__dc__" in value:
            cls = _SERIALIZABLE.get(value["__dc__"])
            if cls is None:
                raise ValueError(f"unknown serialized type {value['__dc__']!r}")
            fields = {k: decode_value(v) for k, v in value["fields"].items()}
            return cls(**fields)
        if "__enum__" in value:
            cls = _SERIALIZABLE.get(value["__enum__"])
            if cls is None:
                raise ValueError(f"unknown serialized enum {value['__enum__']!r}")
            return cls[value["name"]]
        if "__tuple__" in value:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if "__map__" in value:
            return {decode_value(k): decode_value(v) for k, v in value["__map__"]}
        return {k: decode_value(v) for k, v in value.items()}
    return value


def check_schema(payload: Mapping[str, Any], kind: str, schema: int) -> None:
    """Validate the envelope of a versioned ``to_dict`` payload."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"{kind} payload must be a mapping, got {type(payload).__name__}")
    if payload.get("kind") != kind:
        raise ValueError(f"expected a {kind} payload, got kind={payload.get('kind')!r}")
    if payload.get("schema") != schema:
        raise ValueError(
            f"unsupported {kind} schema {payload.get('schema')!r} (supported: {schema})"
        )


# ---------------------------------------------------------------------------
# RunConfig (moved here from repro.harness.runner, which re-exports it)
# ---------------------------------------------------------------------------
@register_serializable
@dataclass
class RunConfig:
    """Sizing and configuration of one simulation run."""

    #: Scales the per-warp instruction count of the workload models
    #: (1.0 reproduces the default ~2000-2600 instructions per warp).
    scale: float = 1.0
    #: Workload RNG seed (streams are deterministic given the seed).
    seed: int = 1
    #: Optional launch-geometry overrides (defaults come from the spec).
    num_ctas: Optional[int] = None
    warps_per_cta: Optional[int] = None
    #: Machine configuration (Table I baseline when omitted).
    gpu_config: GPUConfig = field(default_factory=GPUConfig.gtx480)
    #: Fig. 12b knob: multiply DRAM bandwidth (2.0 = the "2X" variants).
    dram_bandwidth_scale: float = 1.0
    #: CIAO thresholds / epochs (paper defaults when omitted).
    ciao_params: Optional[CIAOParameters] = None
    #: Hard cycle budget per SM (guards against pathological runs).
    max_cycles: Optional[int] = None


def scheduler_kwargs_for(
    scheduler: str, spec: BenchmarkSpec, run_config: RunConfig
) -> dict:
    """Per-benchmark scheduler constructor arguments (profiled knobs)."""
    key = canonical_scheduler_name(scheduler)
    if key == "best-swl":
        return {"warp_limit": spec.nwrp}
    if key == "statpcal":
        # Token holders keep L1D allocation rights; the profiled limit is the
        # natural token count (Li et al. size tokens like a wavefront limit).
        return {"token_count": max(2, spec.nwrp)}
    if key.startswith("ciao"):
        params = run_config.ciao_params or CIAOParameters.paper_defaults()
        return {"params": params}
    return {}


# ---------------------------------------------------------------------------
# The canonical job descriptor
# ---------------------------------------------------------------------------
@register_serializable
@dataclass(frozen=True)
class SimulationRequest:
    """One fully-specified simulation: benchmark x scheduler x config.

    This is the single job descriptor shared by :func:`run_benchmark`, the
    parallel sweep engine (where it was historically called ``SweepJob`` —
    that name remains as an alias), the result cache's key derivation and
    the CLI.
    """

    benchmark: Union[str, BenchmarkSpec]
    scheduler: str = "gto"
    run_config: RunConfig = field(default_factory=RunConfig)
    #: Free-form label callers use to route results (e.g. a Figure 12
    #: variant name or a sensitivity-sweep parameter value).
    tag: Optional[str] = None
    #: Execution engine name (see :mod:`repro.backends`).  ``None`` defers
    #: to ``REPRO_BACKEND`` or the default ``"reference"`` engine.
    backend: Optional[str] = None

    # -- identity ------------------------------------------------------
    @property
    def benchmark_name(self) -> str:
        return (
            self.benchmark.name
            if isinstance(self.benchmark, BenchmarkSpec)
            else str(self.benchmark)
        )

    def spec(self) -> BenchmarkSpec:
        """The resolved benchmark specification."""
        if isinstance(self.benchmark, BenchmarkSpec):
            return self.benchmark
        return get_benchmark(self.benchmark)

    def scheduler_kwargs(self) -> dict:
        """Constructor kwargs the scheduler receives for this request."""
        return scheduler_kwargs_for(self.scheduler, self.spec(), self.run_config)

    def canonicalize(self) -> "SimulationRequest":
        """Resolve every alias so equal jobs compare equal.

        The benchmark name takes the registry's canonical spelling, the
        scheduler its canonical hyphenated name, and the backend its
        concrete resolved name (environment default applied).  Unknown
        names raise ``KeyError`` here rather than mid-simulation.
        """
        from repro.backends import resolve_backend_name

        benchmark = (
            self.benchmark
            if isinstance(self.benchmark, BenchmarkSpec)
            else self.spec().name
        )
        return replace(
            self,
            benchmark=benchmark,
            scheduler=canonical_scheduler_name(self.scheduler),
            backend=resolve_backend_name(self.backend),
        )

    def cache_key(self, *, code_version: Optional[str] = None) -> str:
        """Content hash identifying this job (see :mod:`repro.harness.cache`)."""
        from repro.backends import resolve_backend_name
        from repro.harness.cache import job_key

        spec = self.spec()
        scheduler = canonical_scheduler_name(self.scheduler)
        kwargs = scheduler_kwargs_for(scheduler, spec, self.run_config)
        return job_key(
            spec,
            scheduler,
            kwargs,
            self.run_config,
            backend=resolve_backend_name(self.backend),
            code_version=code_version,
        )

    # -- wire format ---------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned JSON-safe form; ``from_dict`` restores an equal request."""
        return {
            "schema": REQUEST_SCHEMA,
            "kind": "SimulationRequest",
            "data": encode_value(self),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SimulationRequest":
        """Inverse of :meth:`to_dict` (raises ``ValueError`` on schema drift)."""
        check_schema(payload, "SimulationRequest", REQUEST_SCHEMA)
        value = decode_value(payload["data"])
        if not isinstance(value, cls):
            raise ValueError(f"payload decoded to {type(value).__name__}, not {cls.__name__}")
        return value


def execute(request: SimulationRequest):
    """Execute ``request`` on its backend and return the ``SimulationResult``.

    The backend is ``request.backend``, or — when that is ``None`` — the
    ``REPRO_BACKEND`` environment variable, falling back to ``"reference"``.
    """
    from repro.backends import get_backend

    return get_backend(request.backend).execute(request)


# ---------------------------------------------------------------------------
# Codec registrations for the configuration / statistics object graph
# ---------------------------------------------------------------------------
def _register_known_types() -> None:
    from repro.gpu.gpu import SimulationResult
    from repro.gpu.stats import SMStats, StallBreakdown, TimeSeries
    from repro.mem.cache import CacheConfig, WritePolicy
    from repro.mem.dram import DRAMConfig
    from repro.mem.interconnect import InterconnectConfig
    from repro.mem.tag_array import ReplacementPolicy
    from repro.mem.victim_tag_array import VTAConfig
    from repro.workloads.spec import ModelParams, PatternKind, WorkloadClass

    for cls in (
        GPUConfig,
        CacheConfig,
        WritePolicy,
        ReplacementPolicy,
        DRAMConfig,
        InterconnectConfig,
        VTAConfig,
        CIAOParameters,
        BenchmarkSpec,
        ModelParams,
        PatternKind,
        WorkloadClass,
        SMStats,
        StallBreakdown,
        TimeSeries,
        SimulationResult,
    ):
        register_serializable(cls)


_register_known_types()
