"""Figure 11: sensitivity of CIAO-C to the epoch length and high-cutoff threshold."""

from conftest import bench_scale, run_once

from repro.harness import experiments

#: A compact subset of the memory-intensive list keeps the sweep affordable.
SUBSET = ("ATAX", "SYRK", "GESUMMV")


def test_fig11a_epoch_sensitivity(benchmark):
    data = run_once(
        benchmark,
        experiments.fig11_sensitivity_epoch,
        benchmarks=SUBSET,
        epochs=(1000, 5000, 10000, 50000),
        scale=bench_scale(),
    )
    print("\n[Fig 11a] IPC vs high-cutoff epoch (normalised to 5000 instructions):")
    for bench_name, row in data["normalized_to_5000"].items():
        rendered = ", ".join(f"{epoch}: {value:.2f}" for epoch, value in row.items())
        print(f"  {bench_name:10s} {rendered}")
    # The paper reports <15% change across the sweep; allow slack for the
    # reduced workload scale.
    for row in data["normalized_to_5000"].values():
        for value in row.values():
            assert 0.5 < value < 2.0


def test_fig11b_cutoff_sensitivity(benchmark):
    data = run_once(
        benchmark,
        experiments.fig11_sensitivity_cutoff,
        benchmarks=SUBSET,
        cutoffs=(0.04, 0.02, 0.01, 0.005),
        scale=bench_scale(),
    )
    print("\n[Fig 11b] IPC vs high-cutoff threshold (normalised to 1%):")
    for bench_name, row in data["normalized_to_1pct"].items():
        rendered = ", ".join(f"{cutoff:.3f}: {value:.2f}" for cutoff, value in row.items())
        print(f"  {bench_name:10s} {rendered}")
    for row in data["normalized_to_1pct"].values():
        for value in row.values():
            assert 0.5 < value < 2.0
