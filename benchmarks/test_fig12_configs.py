"""Figure 12: larger/associative L1D variants and doubled DRAM bandwidth."""

from conftest import bench_scale, run_once

from repro.harness import experiments
from repro.harness.reporting import format_table

SUBSET = ("ATAX", "SYRK", "KMN", "GESUMMV")


def test_fig12a_l1d_configurations(benchmark):
    data = run_once(
        benchmark, experiments.fig12_cache_configs, benchmarks=SUBSET, scale=bench_scale()
    )
    print("\n[Fig 12a] IPC normalised to GTO for L1D configuration variants:")
    rows = [
        {"benchmark": bench_name, **row} for bench_name, row in data["normalized_ipc"].items()
    ]
    print(format_table(rows, float_format="{:.2f}"))
    for row in data["normalized_ipc"].values():
        assert row["gto"] == 1.0
        # A 3x larger (or 2x more associative) L1D should never devastate
        # performance relative to the baseline.
        assert row["gto-cap"] > 0.5
        assert row["gto-8way"] > 0.5


def test_fig12b_dram_bandwidth(benchmark):
    data = run_once(
        benchmark, experiments.fig12_dram_bandwidth, benchmarks=SUBSET, scale=bench_scale()
    )
    print("\n[Fig 12b] IPC normalised to GTO with doubled DRAM bandwidth:")
    rows = [
        {"benchmark": bench_name, **row} for bench_name, row in data["normalized_ipc"].items()
    ]
    print(format_table(rows, float_format="{:.2f}"))
    for row in data["normalized_ipc"].values():
        assert row["ciao-c-2x"] > 0
        assert row["statpcal-2x"] > 0
