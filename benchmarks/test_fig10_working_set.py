"""Figure 10: CIAO-T vs CIAO-P vs CIAO-C over time on SYRK (SWS) and KMN (LWS)."""

from conftest import bench_scale, run_once

from repro.harness import experiments
from repro.harness.reporting import geometric_mean


def test_fig10_working_set_sensitivity(benchmark):
    data = run_once(benchmark, experiments.fig10_working_set, scale=bench_scale(0.15))
    print("\n[Fig 10] mean dynamic IPC / active warps per CIAO scheme:")
    summary = {}
    for bench_name, per_sched in data.items():
        print(f"  {bench_name}:")
        for sched, series in per_sched.items():
            ipc_values = [v for _, v in series["ipc"]]
            aw_values = [v for _, v in series["active_warps"]]
            mean_ipc = geometric_mean(ipc_values) if ipc_values else 0.0
            mean_aw = sum(aw_values) / len(aw_values) if aw_values else 0.0
            summary[(bench_name, sched)] = mean_ipc
            print(f"    {sched:7s} mean-IPC={mean_ipc:7.2f} mean-active-warps={mean_aw:5.1f}")
    assert set(data) == {"SYRK", "KMN"}
    assert all(v >= 0 for v in summary.values())
