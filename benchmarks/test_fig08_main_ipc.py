"""Figure 8: the main IPC comparison across the seven schedulers.

Runs every benchmark under GTO / CCWS / Best-SWL / statPCAL / CIAO-T /
CIAO-P / CIAO-C and prints (a) IPC normalised to GTO per benchmark plus the
class geomeans and (b) the shared-memory utilisation ratio per class.

The full 21-benchmark sweep is expensive; the bench uses a representative
subset by default (one per class plus the paper's featured workloads).  Set
``REPRO_BENCH_FULL=1`` to run the whole Table II list.
"""

import os

from conftest import bench_scale, run_once

from repro.harness import experiments
from repro.harness.reporting import format_table
from repro.workloads.registry import benchmark_names

SUBSET = ("ATAX", "SYRK", "KMN", "GESUMMV", "SS", "Backprop", "Gaussian")


def _selected_benchmarks():
    if os.environ.get("REPRO_BENCH_FULL"):
        return benchmark_names()
    return SUBSET


def test_fig8_main_comparison(benchmark):
    data = run_once(
        benchmark,
        experiments.fig8_main_comparison,
        benchmarks=_selected_benchmarks(),
        scale=bench_scale(),
    )
    print("\n[Fig 8a] IPC normalised to GTO:")
    rows = []
    for bench_name in data["benchmarks"]:
        row = {"benchmark": bench_name}
        row.update(data["normalized_ipc"][bench_name])
        rows.append(row)
    print(format_table(rows, float_format="{:.2f}"))
    print("[Fig 8a] geometric-mean speedup over GTO:")
    for sched, value in data["geomean_speedup"].items():
        print(f"  {sched:9s} {value:.3f}")
    print("[Fig 8a] per-class geomeans:")
    for cls, per_sched in data["class_geomeans"].items():
        print(f"  {cls}: " + ", ".join(f"{s}={v:.2f}" for s, v in per_sched.items()))
    print("[Fig 8b] shared-memory utilisation ratio (CIAO runs):")
    for cls, value in data["shared_memory_utilization"].items():
        print(f"  {cls}: {value:.2f}")

    speedups = data["geomean_speedup"]
    assert speedups["gto"] == 1.0
    # Headline shape: the full CIAO scheme should not lose to plain GTO.
    assert speedups["ciao-c"] >= 0.95
