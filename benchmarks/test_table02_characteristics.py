"""Table II: benchmark characteristics (APKI, Nwrp, Fsmem, barriers, class)."""

from conftest import run_once

from repro.harness import experiments
from repro.harness.reporting import format_table


def test_table2_benchmark_characteristics(benchmark):
    rows = run_once(benchmark, experiments.table2_benchmarks)
    print("\n[Table II] benchmark characteristics:")
    print(format_table(rows, columns=["Benchmark", "APKI", "Input", "Nwrp", "Fsmem", "Bar.", "Class", "Suite"]))
    assert len(rows) == 21
    names = {row["Benchmark"] for row in rows}
    assert {"ATAX", "Backprop", "SYRK", "KMN", "NW"} <= names
