"""Shared configuration for the per-figure benchmark harnesses.

Every bench regenerates the data behind one table or figure of the paper at
a reduced workload scale so the whole suite completes in minutes.  Set the
``REPRO_BENCH_SCALE`` environment variable (default 0.08) to trade fidelity
for runtime; the harness functions in :mod:`repro.harness.experiments`
accept any scale.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# The benches time simulation work; a warm result cache would turn them
# into pickle-load benchmarks.  Opt out unless the caller insists.
os.environ.setdefault("REPRO_RESULT_CACHE", "0")

import pytest


def bench_scale(default: float = 0.08) -> float:
    """Workload scale used by the benches (env-overridable)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


@pytest.fixture
def scale() -> float:
    return bench_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
