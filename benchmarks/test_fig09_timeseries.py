"""Figure 9: dynamic IPC / active warps / interference over time (ATAX, Backprop)."""

from conftest import bench_scale, run_once

from repro.harness import experiments


def _print_series(label, series, samples=6):
    points = series[:: max(1, len(series) // samples)][:samples]
    rendered = ", ".join(f"({instr}, {value:.1f})" for instr, value in points)
    print(f"    {label}: {rendered}")


def test_fig9_timeseries(benchmark):
    data = run_once(benchmark, experiments.fig9_timeseries, scale=bench_scale(0.15))
    for bench_name, per_sched in data.items():
        print(f"\n[Fig 9] {bench_name}:")
        for sched, series in per_sched.items():
            print(f"  {sched}:")
            _print_series("dynamic IPC", series["ipc"])
            _print_series("active warps", series["active_warps"])
            _print_series("interference", series["interference"])
    assert set(data) == {"ATAX", "Backprop"}
    for per_sched in data.values():
        for series in per_sched.values():
            assert len(series["ipc"]) > 0
