"""Figure 1: motivation — Backprop interference and Best-SWL vs CCWS.

Regenerates (a) the pairwise warp-interference matrix of Backprop under GTO
and (b) the IPC / L1D hit rate / active-warp comparison of Best-SWL and
CCWS, and prints both in the shape the paper plots.
"""

from conftest import bench_scale, run_once

from repro.harness import experiments


def test_fig1a_interference_matrix(benchmark):
    data = run_once(benchmark, experiments.fig1_interference_matrix, scale=bench_scale())
    summary = data["summary"]
    print("\n[Fig 1a] Backprop pairwise interference (top pairs):")
    for victim, aggressor, count in summary["top_pairs"][:10]:
        print(f"  W{aggressor:02d} -> W{victim:02d}: {count}")
    print(f"  total VTA hits: {summary['total_vta_hits']}")
    assert isinstance(data["matrix"], dict)


def test_fig1b_bestswl_vs_ccws(benchmark):
    data = run_once(benchmark, experiments.fig1_bestswl_vs_ccws, scale=bench_scale())
    print("\n[Fig 1b] Backprop: Best-SWL vs CCWS")
    for sched, row in data["rows"].items():
        print(
            f"  {sched:9s} IPC={row['ipc']:7.2f} (norm {row['ipc_normalized']:.2f}) "
            f"hit={row['l1d_hit_rate']:.2f} active-warps={row['mean_active_warps']:.1f}"
        )
    assert set(data["rows"]) == {"best-swl", "ccws"}
