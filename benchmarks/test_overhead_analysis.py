"""Section V-F: area and power overhead of the CIAO hardware additions."""

from conftest import bench_scale, run_once

from repro.harness import experiments


def test_overhead_analysis(benchmark):
    data = run_once(benchmark, experiments.overhead_analysis, scale=bench_scale())
    area = data["area"]
    power = data["power"]
    print("\n[Sec V-F] area overhead:")
    print(f"  VTA (15 SMs):          {area['vta_mm2']:.3f} mm^2")
    print(f"  detector lists:        {area['detector_lists_mm2']:.3f} mm^2")
    print(f"  logic + datapath:      {area['logic_mm2']:.3f} mm^2")
    print(f"  total:                 {area['total_mm2']:.3f} mm^2 "
          f"({area['fraction_of_die'] * 100:.2f}% of the GTX 480 die)")
    print("[Sec V-F] power overhead:")
    print(f"  total: {power['total_mw']:.1f} mW "
          f"({power['fraction_of_tdp'] * 100:.3f}% of TDP), activity from {data['activity_benchmark']}")
    assert data["claims"]["area_below_2_percent"]
    assert data["claims"]["power_below_1_percent_of_tdp"]
