"""Table I: the simulated GPGPU-Sim-like machine configuration."""

from conftest import run_once

from repro.harness import experiments


def test_table1_configuration(benchmark):
    table = run_once(benchmark, experiments.table1_configuration)
    print("\n[Table I] simulated configuration:")
    for key, value in table.items():
        print(f"  {key:24s} {value}")
    assert table["l1d_kb"] == 16
    assert table["shared_memory_kb"] == 48
    assert table["l2_kb"] == 768
    assert table["num_sms"] == 15
