"""Figure 4: interference characterisation (KMN focus + per-workload min/max)."""

from conftest import bench_scale, run_once

from repro.harness import experiments


def test_fig4_interference_characterisation(benchmark):
    data = run_once(
        benchmark,
        experiments.fig4_interference_characterisation,
        scale=bench_scale(),
        benchmarks=("ATAX", "SYRK", "GESUMMV"),
    )
    print(f"\n[Fig 4a] warps interfering with warps of {data['focus_benchmark']} (top):")
    for victim, aggressor, count in data["focus_top_pairs"][:8]:
        print(f"  W{aggressor:02d} interferes with W{victim:02d}: {count} times")
    print("[Fig 4b] per-workload (min, max) interference frequency:")
    for name, (lo, hi) in data["per_workload_min_max"].items():
        print(f"  {name:10s} min={lo:6d} max={hi:6d}")
    assert data["per_workload_min_max"]
