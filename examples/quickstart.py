"""Quickstart: run one benchmark under two schedulers and compare them.

Usage::

    python examples/quickstart.py [benchmark] [scale]

Runs the chosen Table II benchmark (default SYRK) under the GTO baseline and
the full CIAO-C scheme on the simulated GTX 480-like SM, then prints IPC,
cache behaviour and the interference the detector observed.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness.runner import run_benchmark  # noqa: E402
from repro.workloads import get_benchmark  # noqa: E402


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "SYRK"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25
    spec = get_benchmark(benchmark)
    print(f"Benchmark {spec.name} ({spec.suite}, {spec.workload_class.name}): {spec.description}")
    print(f"Table II: APKI={spec.apki}, Nwrp={spec.nwrp}, Fsmem={spec.fsmem:.0%}, "
          f"barriers={'yes' if spec.uses_barriers else 'no'}")
    print()

    results = {}
    for scheduler in ("gto", "ciao-c"):
        result = run_benchmark(spec, scheduler, scale=scale, seed=1)
        results[scheduler] = result
        stats = result.sm0
        print(f"[{scheduler}]")
        print(f"  thread IPC                {result.ipc:8.2f}")
        print(f"  cycles                    {stats.cycles:8d}")
        print(f"  L1D hit rate              {stats.l1d_hit_rate:8.2%}")
        print(f"  shared-cache hit rate     {stats.shared_cache_hit_rate:8.2%}")
        print(f"  VTA hits (lost locality)  {stats.vta_hits:8d}")
        print(f"  redirected accesses       {stats.redirected_accesses:8d}")
        print(f"  throttle events           {stats.throttle_events:8d}")
        print(f"  mean active warps         {stats.active_warp_series.mean():8.1f}")
        print()

    speedup = results["ciao-c"].ipc / results["gto"].ipc if results["gto"].ipc else 0.0
    print(f"CIAO-C speedup over GTO on {spec.name}: {speedup:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
