"""Sensitivity sweep: how CIAO-C reacts to its epoch and cutoff settings.

Usage::

    python examples/sensitivity_sweep.py [benchmark ...]

Reproduces the Figure 11 studies on a small scale: sweeps the high-cutoff
epoch (1K..50K instructions) and the high-cutoff threshold (4%..0.5%) for
CIAO-C and prints the IPC normalised to the paper's chosen settings
(5000 instructions, 1%).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness import experiments  # noqa: E402

DEFAULT_BENCHMARKS = ("ATAX", "SYRK")


def main() -> int:
    benchmarks = tuple(sys.argv[1:]) or DEFAULT_BENCHMARKS

    print("Figure 11a: high-cutoff epoch sweep (normalised to 5000 instructions)")
    epoch_data = experiments.fig11_sensitivity_epoch(benchmarks=benchmarks, scale=0.15)
    for bench, row in epoch_data["normalized_to_5000"].items():
        rendered = "  ".join(f"{epoch//1000}K:{value:.2f}" for epoch, value in sorted(row.items()))
        print(f"  {bench:10s} {rendered}")

    print("\nFigure 11b: high-cutoff threshold sweep (normalised to 1%)")
    cutoff_data = experiments.fig11_sensitivity_cutoff(benchmarks=benchmarks, scale=0.15)
    for bench, row in cutoff_data["normalized_to_1pct"].items():
        rendered = "  ".join(f"{cutoff:.1%}:{value:.2f}" for cutoff, value in sorted(row.items(), reverse=True))
        print(f"  {bench:10s} {rendered}")

    print("\nThe paper selects a 5000-instruction epoch and a 1% high cutoff; "
          "performance should stay within a modest band across the sweep.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
