"""Interference microscope: inspect who interferes with whom inside one run.

Usage::

    python examples/interference_microscope.py [benchmark] [scheduler]

Reproduces the analysis behind Figures 1a and 4: run a benchmark, pull the
pairwise (interfered warp, interfering warp) counts out of the victim tag
array bookkeeping, list the most aggressive warps, and show how the CIAO
detector's Individual Re-reference Score would classify them under the
paper's cutoffs.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import CIAOParameters  # noqa: E402
from repro.harness.runner import run_benchmark  # noqa: E402


def main() -> int:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "KMN"
    scheduler = sys.argv[2] if len(sys.argv) > 2 else "gto"
    params = CIAOParameters.paper_defaults()

    result = run_benchmark(benchmark, scheduler, scale=0.25, seed=1)
    stats = result.sm0
    print(f"{benchmark} under {scheduler}: IPC={result.ipc:.2f}, "
          f"L1D hit rate={stats.l1d_hit_rate:.2%}, VTA hits={stats.vta_hits}")

    print("\nMost frequent (interfering -> interfered) pairs:")
    for victim, aggressor, count in stats.interference_pairs()[:12]:
        print(f"  W{aggressor:02d} -> W{victim:02d}  {count:6d} lost-locality events")

    lo, hi = stats.interference_extremes()
    print(f"\nPer-warp interference frequency: min={lo}, max={hi}")

    print("\nIRS classification (paper cutoffs: high=1%, low=0.5%):")
    total_instr = stats.instructions_issued
    active = max(1, len(stats.per_warp_instructions))
    flagged = 0
    for wid, hits in sorted(stats.per_warp_vta_hits.items(), key=lambda kv: -kv[1])[:10]:
        irs = hits / (total_instr / active)
        label = "SEVERE" if irs > params.high_cutoff else ("light" if irs > params.low_cutoff else "calm")
        flagged += label == "SEVERE"
        print(f"  W{wid:02d}: VTA hits={hits:5d}  IRS={irs:.4f}  -> {label}")
    print(f"\n{flagged} of the top-10 interfered warps exceed the high cutoff; "
          "these are the warps whose top interferer CIAO would isolate or throttle.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
