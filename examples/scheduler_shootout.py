"""Scheduler shoot-out: the Figure 8 experiment on a chosen set of benchmarks.

Usage::

    python examples/scheduler_shootout.py [--workers N] [benchmark ...]

Runs every scheduler of the paper's evaluation (GTO, CCWS, Best-SWL,
statPCAL, CIAO-T, CIAO-P, CIAO-C) on the requested benchmarks (default: one
representative of each working-set class) and prints the normalised IPC
table plus per-class geometric means — the textual form of Figure 8a.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.harness import experiments  # noqa: E402
from repro.harness.reporting import format_table  # noqa: E402

DEFAULT_BENCHMARKS = ("ATAX", "SYRK", "Backprop")


def main() -> int:
    args = list(sys.argv[1:])
    workers = None
    if "--workers" in args:
        at = args.index("--workers")
        try:
            workers = int(args[at + 1])
        except (IndexError, ValueError):
            print("usage: scheduler_shootout.py [--workers N] [benchmark ...]",
                  file=sys.stderr)
            return 2
        del args[at:at + 2]
    benchmarks = tuple(args) or DEFAULT_BENCHMARKS
    print(f"Running the Figure 8 comparison on: {', '.join(benchmarks)}")
    data = experiments.fig8_main_comparison(benchmarks=benchmarks, scale=0.2, workers=workers)
    engine = data["engine"]
    print(f"(engine: {engine['jobs']} jobs, {engine['cache_hits']} cached, "
          f"{engine['workers']} workers, {engine['wall_seconds']:.1f}s)")

    rows = []
    for bench in data["benchmarks"]:
        row = {"benchmark": bench}
        row.update({sched: round(v, 2) for sched, v in data["normalized_ipc"][bench].items()})
        rows.append(row)
    print()
    print("IPC normalised to GTO:")
    print(format_table(rows, float_format="{:.2f}"))
    print()
    print("Geometric-mean speedup over GTO:")
    for sched, value in data["geomean_speedup"].items():
        print(f"  {sched:9s} {value:.3f}")
    print()
    print("Shared-memory utilisation (CIAO runs) per class:")
    for cls, value in data["shared_memory_utilization"].items():
        print(f"  {cls:4s} {value:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
