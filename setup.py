"""Setuptools shim.

The execution environment has setuptools 65 without the ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  Keeping a classic
``setup.py`` lets ``pip install -e .`` fall back to the legacy develop-mode
install, which works offline.
"""

from setuptools import setup

setup()
