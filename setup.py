"""Packaging for the CIAO reproduction.

A classic ``setup.py`` (rather than PEP 517 metadata) because the execution
environment has setuptools 65 without the ``wheel`` package, so editable
installs must fall back to the legacy develop-mode path, which works
offline.  ``pip install -e .`` provides the ``repro`` console script;
without installing, use ``PYTHONPATH=src python -m repro`` instead.
"""

from pathlib import Path

from setuptools import find_packages, setup

_VERSION: dict = {}
exec((Path(__file__).parent / "src" / "repro" / "version.py").read_text(), _VERSION)

setup(
    name="repro-ciao",
    version=_VERSION["__version__"],
    description=(
        "Reproduction of CIAO: cache-interference-aware throughput-oriented "
        "GPU warp scheduling (Zhang et al., IPDPS 2018)"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text()
    if (Path(__file__).parent / "README.md").exists()
    else "",
    long_description_content_type="text/markdown",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
    # The core simulator is dependency-free; the numpy-batched `vector`
    # execution engine is an optional extra (`pip install repro-ciao[vector]`).
    # Importing repro without numpy keeps working — selecting the vector
    # backend without it raises repro.backends.BackendUnavailableError.
    extras_require={"vector": ["numpy>=1.24"]},
)
