"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(e.g. running ``pytest`` straight from a fresh checkout in an offline
environment where ``pip install -e .`` is unavailable).
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# Hermetic tests: never read or write the user's on-disk result cache by
# default.  Tests that exercise caching construct explicit ResultCache
# instances in tmp directories (see tests/test_result_cache.py).
os.environ.setdefault("REPRO_RESULT_CACHE", "0")

# Likewise, never append to the repository's bench ledger from the suite;
# ledger tests pass explicit tmp paths (see tests/test_ledger.py).
os.environ.setdefault("REPRO_LEDGER", "0")

# Hypothesis profiles for the property/fuzz suites.  "ci" (the default) is
# seeded and time-box friendly: derandomize makes every run replay the same
# example sequence, so a green CI run is reproducible locally and flakes
# cannot hide in random example draws.  "deep" is the workflow_dispatch
# fuzz profile — 10x the examples, still derandomized.  Select with
# HYPOTHESIS_PROFILE=deep (see .github/workflows/ci.yml).
try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis ships with the toolchain
    pass
else:
    settings.register_profile(
        "ci", derandomize=True, deadline=None, max_examples=60
    )
    settings.register_profile(
        "deep", derandomize=True, deadline=None, max_examples=600
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
